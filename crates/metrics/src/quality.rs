//! PC / PQ / F1 evaluation of block collections and retained-pair sets.

use blast_blocking::collection::BlockCollection;
use blast_blocking::index::ProfileBlockIndex;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::ground_truth::GroundTruth;

/// The quality of a block collection (or restructured comparison set)
/// against a ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQuality {
    /// Pair Completeness |D_B|/|D_E| — recall surrogate.
    pub pc: f64,
    /// Pair Quality |D_B|/‖B‖ — precision surrogate.
    pub pq: f64,
    /// Harmonic mean of PC and PQ.
    pub f1: f64,
    /// |D_B|: ground-truth pairs detected (co-occurring in ≥1 block).
    pub detected: u64,
    /// |D_E|: total ground-truth pairs.
    pub total_duplicates: u64,
    /// ‖B‖: aggregate comparison cardinality.
    pub comparisons: u64,
}

impl std::fmt::Display for BlockQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PC = {:.2}%, PQ = {:.4}%, F1 = {:.4} ({} of {} duplicates in {} comparisons)",
            self.pc * 100.0,
            self.pq * 100.0,
            self.f1,
            self.detected,
            self.total_duplicates,
            self.comparisons
        )
    }
}

impl BlockQuality {
    /// Assembles the metrics from raw counts.
    pub fn from_counts(detected: u64, total_duplicates: u64, comparisons: u64) -> Self {
        let pc = if total_duplicates == 0 {
            0.0
        } else {
            detected as f64 / total_duplicates as f64
        };
        let pq = if comparisons == 0 {
            0.0
        } else {
            detected as f64 / comparisons as f64
        };
        let f1 = if pc + pq == 0.0 {
            0.0
        } else {
            2.0 * pc * pq / (pc + pq)
        };
        Self {
            pc,
            pq,
            f1,
            detected,
            total_duplicates,
            comparisons,
        }
    }
}

/// Evaluates a block collection: PC by intersecting the block lists of each
/// ground-truth pair, ‖B‖ arithmetically — no comparison enumeration, so
/// this works even for ‖B‖ in the 10¹² range (Table 3's dbp baseline).
pub fn evaluate_blocks(blocks: &BlockCollection, gt: &GroundTruth) -> BlockQuality {
    let index = ProfileBlockIndex::build(blocks);
    let detected = gt.iter().filter(|&(a, b)| index.co_occur(a.0, b.0)).count() as u64;
    BlockQuality::from_counts(detected, gt.len() as u64, blocks.aggregate_cardinality())
}

/// Evaluates a set of retained comparisons (meta-blocking output): each pair
/// is one comparison, pairs are unique by construction.
///
/// ```
/// use blast_datamodel::entity::ProfileId;
/// use blast_datamodel::ground_truth::GroundTruth;
/// use blast_metrics::quality::evaluate_pairs;
///
/// let gt: GroundTruth = [(ProfileId(0), ProfileId(2))].into_iter().collect();
/// let pairs = [(ProfileId(0), ProfileId(2)), (ProfileId(1), ProfileId(2))];
/// let q = evaluate_pairs(&pairs, &gt);
/// assert_eq!(q.pc, 1.0);  // the match is retained
/// assert_eq!(q.pq, 0.5);  // half the comparisons are useful
/// ```
pub fn evaluate_pairs(pairs: &[(ProfileId, ProfileId)], gt: &GroundTruth) -> BlockQuality {
    let detected = pairs.iter().filter(|&&(a, b)| gt.is_match(a, b)).count() as u64;
    BlockQuality::from_counts(detected, gt.len() as u64, pairs.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::key::ClusterId;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn gt(pairs: &[(u32, u32)]) -> GroundTruth {
        pairs
            .iter()
            .map(|&(a, b)| (ProfileId(a), ProfileId(b)))
            .collect()
    }

    #[test]
    fn perfect_blocking() {
        // Blocks exactly the two matching pairs.
        let blocks = BlockCollection::new(
            vec![
                Block::new("x", ClusterId::GLUE, ids(&[0, 2]), 2),
                Block::new("y", ClusterId::GLUE, ids(&[1, 3]), 2),
            ],
            true,
            2,
            4,
        );
        let q = evaluate_blocks(&blocks, &gt(&[(0, 2), (1, 3)]));
        assert_eq!(q.pc, 1.0);
        assert_eq!(q.pq, 1.0);
        assert_eq!(q.f1, 1.0);
        assert_eq!(q.detected, 2);
    }

    #[test]
    fn redundant_comparisons_hurt_pq_not_pc() {
        // The same matching pair in three blocks: PC = 1, PQ = 1/3.
        let blocks = BlockCollection::new(
            vec![
                Block::new("a", ClusterId::GLUE, ids(&[0, 2]), 2),
                Block::new("b", ClusterId::GLUE, ids(&[0, 2]), 2),
                Block::new("c", ClusterId::GLUE, ids(&[0, 2]), 2),
            ],
            true,
            2,
            4,
        );
        let q = evaluate_blocks(&blocks, &gt(&[(0, 2)]));
        assert_eq!(q.pc, 1.0);
        assert!((q.pq - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_duplicates_lower_pc() {
        let blocks = BlockCollection::new(
            vec![Block::new("a", ClusterId::GLUE, ids(&[0, 2]), 2)],
            true,
            2,
            4,
        );
        let q = evaluate_blocks(&blocks, &gt(&[(0, 2), (1, 3)]));
        assert_eq!(q.pc, 0.5);
        assert_eq!(q.detected, 1);
    }

    #[test]
    fn empty_inputs() {
        let blocks = BlockCollection::new(vec![], true, 2, 4);
        let q = evaluate_blocks(&blocks, &gt(&[(0, 2)]));
        assert_eq!(q.pc, 0.0);
        assert_eq!(q.pq, 0.0);
        assert_eq!(q.f1, 0.0);
        let q = evaluate_pairs(&[], &gt(&[(0, 2)]));
        assert_eq!(q.pq, 0.0);
    }

    #[test]
    fn pairs_evaluation() {
        let pairs = vec![
            (ProfileId(0), ProfileId(2)),
            (ProfileId(0), ProfileId(3)),
            (ProfileId(1), ProfileId(3)),
            (ProfileId(1), ProfileId(2)),
        ];
        let q = evaluate_pairs(&pairs, &gt(&[(0, 2), (1, 3)]));
        assert_eq!(q.pc, 1.0);
        assert_eq!(q.pq, 0.5);
        let expected_f1 = 2.0 * 1.0 * 0.5 / 1.5;
        assert!((q.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let q = BlockQuality::from_counts(9, 10, 100);
        let s = q.to_string();
        assert!(s.contains("PC = 90.00%"), "{s}");
        assert!(s.contains("9 of 10"), "{s}");
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let q = BlockQuality::from_counts(50, 100, 1000);
        // PC = .5, PQ = .05 → F1 = 2·.5·.05/.55
        assert!((q.f1 - 2.0 * 0.5 * 0.05 / 0.55).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_metrics_bounded(detected in 0u64..100, extra_dupes in 0u64..100, extra_cmp in 0u64..1000) {
            let q = BlockQuality::from_counts(
                detected,
                detected + extra_dupes,
                detected + extra_cmp,
            );
            prop_assert!((0.0..=1.0).contains(&q.pc));
            prop_assert!((0.0..=1.0).contains(&q.pq));
            prop_assert!((0.0..=1.0).contains(&q.f1));
            prop_assert!(q.f1 <= q.pc.max(q.pq) + 1e-12);
        }
    }
}
