//! Entity resolution output: the transitive closure of the match graph.
//!
//! Matching is pairwise, but entities are equivalence classes — two profiles
//! matched to the same third profile refer to the same entity even if they
//! were never compared. Connected components of the match graph give the
//! resolved entities.

use blast_datamodel::entity::ProfileId;

/// Groups profiles into resolved entities: the connected components of the
/// match graph, each sorted; singletons are omitted. Components are ordered
/// by their smallest member.
pub fn resolve_entities(
    matches: &[(ProfileId, ProfileId)],
    total_profiles: usize,
) -> Vec<Vec<ProfileId>> {
    // Local union–find (the schema one lives in blast-core; kept separate so
    // the matcher crate stays independent of it).
    let mut parent: Vec<u32> = (0..total_profiles as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let next = parent[parent[x as usize] as usize];
            parent[x as usize] = next;
            x = next;
        }
        x
    }
    for &(a, b) in matches {
        let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }
    let mut groups: Vec<Vec<ProfileId>> = vec![Vec::new(); total_profiles];
    for p in 0..total_profiles as u32 {
        let root = find(&mut parent, p);
        groups[root as usize].push(ProfileId(p));
    }
    groups.retain(|g| g.len() > 1);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(a: u32, b: u32) -> (ProfileId, ProfileId) {
        (ProfileId(a), ProfileId(b))
    }

    #[test]
    fn transitive_closure_merges_chains() {
        // a–b and b–c matched, a–c never compared → one entity {a,b,c}.
        let clusters = resolve_entities(&[p(0, 1), p(1, 2)], 5);
        assert_eq!(
            clusters,
            vec![vec![ProfileId(0), ProfileId(1), ProfileId(2)]]
        );
    }

    #[test]
    fn separate_components_stay_apart() {
        let clusters = resolve_entities(&[p(0, 1), p(2, 3)], 5);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![ProfileId(0), ProfileId(1)]);
        assert_eq!(clusters[1], vec![ProfileId(2), ProfileId(3)]);
    }

    #[test]
    fn no_matches_no_entities() {
        assert!(resolve_entities(&[], 10).is_empty());
    }

    proptest! {
        /// Every matched pair ends up in the same cluster, clusters are
        /// disjoint, and no singleton clusters are reported.
        #[test]
        fn prop_components_consistent(
            matches in proptest::collection::vec((0u32..30, 0u32..30), 0..40)
        ) {
            let pairs: Vec<_> = matches
                .iter()
                .filter(|(a, b)| a != b)
                .map(|&(a, b)| p(a, b))
                .collect();
            let clusters = resolve_entities(&pairs, 30);
            let mut owner = vec![usize::MAX; 30];
            for (ci, c) in clusters.iter().enumerate() {
                prop_assert!(c.len() > 1);
                for m in c {
                    prop_assert_eq!(owner[m.index()], usize::MAX, "disjoint clusters");
                    owner[m.index()] = ci;
                }
            }
            for (a, b) in pairs {
                prop_assert_eq!(owner[a.index()], owner[b.index()]);
                prop_assert_ne!(owner[a.index()], usize::MAX);
            }
        }
    }
}
