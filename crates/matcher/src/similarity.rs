//! Profile-level similarity: each profile as the set of its tokens
//! (schema-free, §4.2.2's footnote: "profiles are treated as strings").

use blast_datamodel::entity::ProfileId;
use blast_datamodel::input::ErInput;
use blast_datamodel::interner::Interner;
use blast_datamodel::tokenizer::Tokenizer;

/// Pre-tokenised profiles: one sorted token-id set per profile, so pair
/// similarity is a linear merge.
#[derive(Debug, Clone)]
pub struct ProfileTokens {
    sets: Vec<Vec<u32>>,
}

impl ProfileTokens {
    /// Tokenises every profile of the input once.
    pub fn build(input: &ErInput, tokenizer: &Tokenizer) -> Self {
        let mut interner = Interner::new();
        let mut sets = vec![Vec::new(); input.total_profiles()];
        for (pid, _, profile) in input.iter_profiles() {
            let set = &mut sets[pid.index()];
            for (_, value) in &profile.values {
                tokenizer.for_each_token(value, |tok| set.push(interner.intern(tok).0));
            }
            set.sort_unstable();
            set.dedup();
        }
        Self { sets }
    }

    /// The sorted token ids of a profile.
    #[inline]
    pub fn tokens(&self, p: ProfileId) -> &[u32] {
        &self.sets[p.index()]
    }

    /// Jaccard coefficient of two profiles' token sets.
    pub fn jaccard(&self, a: ProfileId, b: ProfileId) -> f64 {
        let (sa, sb) = (self.tokens(a), self.tokens(b));
        if sa.is_empty() && sb.is_empty() {
            return 0.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter as f64 / (sa.len() + sb.len() - inter) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;

    fn input() -> ErInput {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("a", [("x", "alpha beta gamma"), ("y", "delta")]);
        d.push_pairs("b", [("z", "alpha beta gamma delta")]);
        d.push_pairs("c", [("x", "unrelated words here")]);
        ErInput::dirty(d)
    }

    #[test]
    fn identical_token_sets_score_one() {
        let pt = ProfileTokens::build(&input(), &Tokenizer::new());
        // a and b have the same tokens through different attributes.
        assert_eq!(pt.jaccard(ProfileId(0), ProfileId(1)), 1.0);
    }

    #[test]
    fn disjoint_profiles_score_zero() {
        let pt = ProfileTokens::build(&input(), &Tokenizer::new());
        assert_eq!(pt.jaccard(ProfileId(0), ProfileId(2)), 0.0);
    }

    #[test]
    fn duplicate_tokens_counted_once() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("a", [("x", "rose rose rose")]);
        d.push_pairs("b", [("x", "rose")]);
        let pt = ProfileTokens::build(&ErInput::dirty(d), &Tokenizer::new());
        assert_eq!(pt.jaccard(ProfileId(0), ProfileId(1)), 1.0);
    }

    #[test]
    fn empty_profiles_are_zero() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push(blast_datamodel::entity::EntityProfile::new("blank"));
        d.push_pairs("b", [("x", "token")]);
        let pt = ProfileTokens::build(&ErInput::dirty(d), &Tokenizer::new());
        assert_eq!(pt.jaccard(ProfileId(0), ProfileId(1)), 0.0);
        assert_eq!(pt.jaccard(ProfileId(0), ProfileId(0)), 0.0);
    }
}
