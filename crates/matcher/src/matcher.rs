//! Threshold matching over a comparison set.

use crate::similarity::ProfileTokens;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::input::ErInput;
use blast_datamodel::parallel::{default_threads, parallel_map};
use blast_datamodel::tokenizer::Tokenizer;
use blast_graph::retained::RetainedPairs;

/// The outcome of matching a comparison set.
#[derive(Debug, Clone)]
pub struct MatchDecision {
    /// The pairs classified as matches (normalised, sorted).
    pub matches: Vec<(ProfileId, ProfileId)>,
    /// Number of comparisons executed.
    pub comparisons: u64,
}

/// The paper's §4.2.2 matcher: profile-token Jaccard against a threshold.
#[derive(Debug, Clone, Copy)]
pub struct JaccardMatcher {
    /// Similarity threshold in [0, 1].
    pub threshold: f64,
}

impl Default for JaccardMatcher {
    fn default() -> Self {
        Self { threshold: 0.5 }
    }
}

impl JaccardMatcher {
    /// A matcher with the given threshold.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Self { threshold }
    }

    /// Executes the comparisons of `pairs` (a meta-blocking output).
    pub fn match_pairs(&self, input: &ErInput, pairs: &RetainedPairs) -> MatchDecision {
        let tokens = ProfileTokens::build(input, &Tokenizer::new());
        let slice: Vec<(ProfileId, ProfileId)> = pairs.iter().collect();
        let threads = default_threads(slice.len());
        let decisions = parallel_map(&slice, threads, |&(a, b)| {
            tokens.jaccard(a, b) >= self.threshold
        });
        let matches = slice
            .iter()
            .zip(&decisions)
            .filter_map(|(&p, &keep)| keep.then_some(p))
            .collect();
        MatchDecision {
            matches,
            comparisons: slice.len() as u64,
        }
    }

    /// Executes every comparison a block collection implies (the paper's
    /// baseline for the time-saved argument; beware ‖B‖ here).
    pub fn match_blocks(
        &self,
        input: &ErInput,
        blocks: &blast_blocking::collection::BlockCollection,
    ) -> MatchDecision {
        let tokens = ProfileTokens::build(input, &Tokenizer::new());
        let mut matches = Vec::new();
        let mut comparisons = 0u64;
        let mut seen = blast_datamodel::hash::FastSet::default();
        blocks.for_each_comparison(|a, b| {
            comparisons += 1;
            let key = if a <= b { (a, b) } else { (b, a) };
            if seen.insert(key) && tokens.jaccard(a, b) >= self.threshold {
                matches.push(key);
            }
        });
        matches.sort_unstable();
        MatchDecision {
            matches,
            comparisons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;

    fn input() -> ErInput {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("a", [("x", "alpha beta gamma delta")]);
        d.push_pairs("b", [("y", "alpha beta gamma epsilon")]); // J = 3/5
        d.push_pairs("c", [("x", "totally different content")]);
        ErInput::dirty(d)
    }

    #[test]
    fn pairs_above_threshold_match() {
        let input = input();
        let pairs = RetainedPairs::new(vec![
            (ProfileId(0), ProfileId(1)),
            (ProfileId(0), ProfileId(2)),
        ]);
        let decision = JaccardMatcher::new(0.5).match_pairs(&input, &pairs);
        assert_eq!(decision.comparisons, 2);
        assert_eq!(decision.matches, vec![(ProfileId(0), ProfileId(1))]);
        // A stricter threshold rejects the 0.6 pair too.
        let decision = JaccardMatcher::new(0.9).match_pairs(&input, &pairs);
        assert!(decision.matches.is_empty());
    }

    #[test]
    fn block_matching_counts_redundant_comparisons_once_for_matching() {
        let input = input();
        let blocks = BlockCollection::new(
            vec![
                Block::new(
                    "k1",
                    ClusterId::GLUE,
                    vec![ProfileId(0), ProfileId(1)],
                    u32::MAX,
                ),
                Block::new(
                    "k2",
                    ClusterId::GLUE,
                    vec![ProfileId(0), ProfileId(1)],
                    u32::MAX,
                ),
            ],
            false,
            3,
            3,
        );
        let decision = JaccardMatcher::new(0.5).match_blocks(&input, &blocks);
        // ‖B‖ counts both, the match is reported once.
        assert_eq!(decision.comparisons, 2);
        assert_eq!(decision.matches.len(), 1);
    }
}
