//! Matching-stage quality: precision/recall/F1 of the *matcher's* output
//! (unlike PC/PQ, which evaluate the blocking surrogates).

use blast_datamodel::entity::ProfileId;
use blast_datamodel::ground_truth::GroundTruth;

/// Precision/recall/F1 of a set of predicted matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Fraction of predicted matches that are true matches.
    pub precision: f64,
    /// Fraction of true matches that were predicted.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// True positives.
    pub true_positives: u64,
}

/// Evaluates predicted matches against the ground truth.
pub fn evaluate_matches(predicted: &[(ProfileId, ProfileId)], gt: &GroundTruth) -> MatchQuality {
    let tp = predicted
        .iter()
        .filter(|&&(a, b)| gt.is_match(a, b))
        .count() as u64;
    let precision = if predicted.is_empty() {
        0.0
    } else {
        tp as f64 / predicted.len() as f64
    };
    let recall = if gt.is_empty() {
        0.0
    } else {
        tp as f64 / gt.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    MatchQuality {
        precision,
        recall,
        f1,
        true_positives: tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> (ProfileId, ProfileId) {
        (ProfileId(a), ProfileId(b))
    }

    #[test]
    fn perfect_prediction() {
        let gt: GroundTruth = [p(0, 1), p(2, 3)].into_iter().collect();
        let q = evaluate_matches(&[p(0, 1), p(2, 3)], &gt);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
    }

    #[test]
    fn partial_prediction() {
        let gt: GroundTruth = [p(0, 1), p(2, 3)].into_iter().collect();
        let q = evaluate_matches(&[p(0, 1), p(4, 5)], &gt);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
        assert_eq!(q.true_positives, 1);
    }

    #[test]
    fn empty_cases() {
        let gt: GroundTruth = [p(0, 1)].into_iter().collect();
        let q = evaluate_matches(&[], &gt);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.f1, 0.0);
        let q = evaluate_matches(&[p(0, 1)], &GroundTruth::new());
        assert_eq!(q.recall, 0.0);
    }
}
