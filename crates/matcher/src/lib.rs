//! A simple entity-matching stage on top of BLAST's blocking.
//!
//! BLAST is "independent of the entity resolution algorithm employed" (§2);
//! its output is the set of comparisons worth executing. This crate supplies
//! the matcher the paper itself uses to quantify the time saved (§4.2.2):
//! "profiles are treated as strings, without considering metadata; we
//! compute the Jaccard coefficient of the profiles" — plus the transitive
//! closure that turns matched pairs into resolved entities.
//!
//! * [`similarity`] — profile-level token Jaccard (with cached token sets).
//! * [`matcher`] — threshold classification over a comparison set.
//! * [`clustering`] — connected components of the match graph → entity
//!   clusters.
//! * [`evaluation`] — precision/recall/F1 of the *matching* output (not the
//!   blocking surrogates).

pub mod clustering;
pub mod evaluation;
pub mod matcher;
pub mod similarity;

pub use clustering::resolve_entities;
pub use evaluation::{evaluate_matches, MatchQuality};
pub use matcher::{JaccardMatcher, MatchDecision};
pub use similarity::ProfileTokens;
