//! End-to-end I/O round trips: CSV → collection → ground truth → pairs and
//! back, including the quoting, empty-attribute and multi-value edge cases
//! a real export pipeline produces.

use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_datamodel::input::ErInput;
use blast_graph::retained::RetainedPairs;
use blast_io::collection::{read_collection, write_collection, CollectionReadOptions};
use blast_io::ground_truth::{read_ground_truth, write_ground_truth};
use blast_io::pairs::write_pairs;
use proptest::prelude::*;
use std::io::BufReader;

fn read(text: &str, options: &CollectionReadOptions) -> EntityCollection {
    read_collection(&mut BufReader::new(text.as_bytes()), SourceId(0), options).unwrap()
}

fn default_options() -> CollectionReadOptions {
    CollectionReadOptions::default()
}

fn id_options(name: &str) -> CollectionReadOptions {
    CollectionReadOptions {
        id_column: Some(name.to_string()),
    }
}

#[test]
fn quoted_fields_survive_collection_roundtrip() {
    // Commas, escaped quotes, embedded newlines and unicode in values —
    // and a quoted comma in an attribute *name*.
    let csv = "id,\"title, full\",notes\n\
               p1,\"Entity, Resolution\",\"say \"\"hi\"\"\"\n\
               p2,\"line1\nline2\",plain\n\
               p3,Modène,\"émilie, romagne\"\n";
    let c = read(csv, &default_options());
    assert_eq!(c.len(), 3);
    assert_eq!(c.attribute_count(), 3); // id column is interned too
    let title = c.attribute_id("title, full").unwrap();
    assert_eq!(
        c.profiles()[0].values_of(title).next(),
        Some("Entity, Resolution")
    );
    assert_eq!(
        c.profiles()[1].values_of(title).next(),
        Some("line1\nline2")
    );

    // Write → read → identical shape and values.
    let mut buf = Vec::new();
    write_collection(&mut buf, &c).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let c2 = read(&text, &id_options("_id"));
    assert_eq!(c2.len(), c.len());
    assert_eq!(c2.nvp(), c.nvp());
    let title2 = c2.attribute_id("title, full").unwrap();
    assert_eq!(
        c2.profiles()[0].values_of(title2).next(),
        Some("Entity, Resolution")
    );
    assert_eq!(c2.profiles()[0].external_id, c.profiles()[0].external_id);
}

#[test]
fn empty_attributes_are_missing_values_not_empty_strings() {
    let csv = "id,a,b,c\np1,,x,\np2,,,\np3,1,2,3\n";
    let c = read(csv, &default_options());
    // p1 has only b; p2 is entirely blank; p3 has all three.
    assert_eq!(c.profiles()[0].nvp(), 1);
    assert_eq!(c.profiles()[1].nvp(), 0);
    assert!(c.profiles()[1].is_blank());
    assert_eq!(c.profiles()[2].nvp(), 3);

    // Round trip keeps the blanks blank.
    let mut buf = Vec::new();
    write_collection(&mut buf, &c).unwrap();
    let c2 = read(&String::from_utf8(buf).unwrap(), &id_options("_id"));
    assert_eq!(c2.profiles()[1].nvp(), 0);
    assert_eq!(c2.nvp(), c.nvp());
}

#[test]
fn short_rows_are_tolerated_missing_id_defaults() {
    // A row shorter than the header simply misses trailing attributes; an
    // empty id cell falls back to a row-derived id.
    let csv = "id,a,b\np1,1\n,2,3\n";
    let c = read(csv, &default_options());
    assert_eq!(c.len(), 2);
    assert_eq!(c.profiles()[0].nvp(), 1);
    assert_eq!(c.profiles()[1].external_id.as_ref(), "row3");
    assert_eq!(c.profiles()[1].nvp(), 2);
}

#[test]
fn ground_truth_roundtrip_with_quoted_external_ids() {
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push_pairs("plain", [("x", "1")]);
    d1.push_pairs("with,comma", [("x", "2")]);
    let mut d2 = EntityCollection::new(SourceId(1));
    d2.push_pairs("say \"hi\"", [("y", "1")]);
    d2.push_pairs("other", [("y", "2")]);
    let input = ErInput::clean_clean(d1, d2);

    let mut gt = blast_datamodel::ground_truth::GroundTruth::new();
    gt.insert(ProfileId(0), ProfileId(2));
    gt.insert(ProfileId(1), ProfileId(3));

    let mut buf = Vec::new();
    write_ground_truth(&mut buf, &gt, &input).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // The quoted ids must round-trip through the CSV layer.
    let gt2 = read_ground_truth(&mut BufReader::new(text.as_bytes()), &input).unwrap();
    assert_eq!(gt2.len(), 2);
    assert!(gt2.is_match(ProfileId(0), ProfileId(2)));
    assert!(gt2.is_match(ProfileId(1), ProfileId(3)));
}

#[test]
fn pairs_file_reads_back_as_ground_truth() {
    // The CLI evaluates written pair files by re-reading them with the
    // ground-truth reader — pin that contract, edge cases included.
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push_pairs("a,1", [("x", "1")]);
    let mut d2 = EntityCollection::new(SourceId(1));
    d2.push_pairs("b\n1", [("y", "1")]);
    let input = ErInput::clean_clean(d1, d2);
    let retained = RetainedPairs::new(vec![(ProfileId(0), ProfileId(1))]);

    let mut buf = Vec::new();
    write_pairs(&mut buf, &retained, &input).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let parsed = read_ground_truth(&mut BufReader::new(text.as_bytes()), &input).unwrap();
    assert_eq!(parsed.len(), 1);
    assert!(parsed.is_match(ProfileId(0), ProfileId(1)));
}

proptest! {
    /// Collection round trip over random single-valued profiles with nasty
    /// characters: write → read preserves ids, attribute names and values.
    #[test]
    fn prop_collection_roundtrip(
        rows in proptest::collection::vec(
            proptest::collection::vec("[ -~é\n\"]{0,8}", 2..5), 1..8)
    ) {
        let width = rows[0].len();
        let mut c = EntityCollection::new(SourceId(0));
        let attrs: Vec<String> = (0..width - 1).map(|i| format!("a{i}")).collect();
        for (i, row) in rows.iter().enumerate() {
            let pairs: Vec<(&str, &str)> = attrs
                .iter()
                .zip(row.iter().skip(1))
                .filter(|(_, v)| !v.is_empty())
                .map(|(a, v)| (a.as_str(), v.as_str()))
                .take(width - 1)
                .collect();
            c.push_pairs(&format!("id{i}"), pairs);
        }
        let mut buf = Vec::new();
        write_collection(&mut buf, &c).unwrap();
        let c2 = read(&String::from_utf8(buf).unwrap(), &id_options("_id"));
        prop_assert_eq!(c2.len(), c.len());
        prop_assert_eq!(c2.nvp(), c.nvp());
        for (p, q) in c.profiles().iter().zip(c2.profiles()) {
            prop_assert_eq!(&p.external_id, &q.external_id);
            prop_assert_eq!(p.nvp(), q.nvp());
        }
    }
}
