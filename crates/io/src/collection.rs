//! Reading/writing entity collections as headered CSV.
//!
//! Layout: the header row names the attributes; each following row is one
//! profile. One column (by default the first, or any column named by the
//! caller) carries the external id. Empty cells produce no name–value pair
//! (missing values).

use crate::csv;
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::{EntityProfile, SourceId};
use std::io::{self, BufRead, Write};

/// Options for [`read_collection`].
#[derive(Debug, Clone, Default)]
pub struct CollectionReadOptions {
    /// Name of the id column (default: the first column).
    pub id_column: Option<String>,
}

/// Reads a collection from headered CSV.
pub fn read_collection(
    reader: &mut impl BufRead,
    source: SourceId,
    options: &CollectionReadOptions,
) -> io::Result<EntityCollection> {
    let rows = csv::read(reader)?;
    let mut collection = EntityCollection::new(source);
    let Some((header, body)) = rows.split_first() else {
        return Ok(collection);
    };
    let id_idx = match &options.id_column {
        None => 0,
        Some(name) => header.iter().position(|h| h == name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no column named {name:?}"),
            )
        })?,
    };
    let attrs: Vec<_> = header
        .iter()
        .enumerate()
        .map(|(i, name)| (i, collection.attribute(name)))
        .collect();

    for (line, row) in body.iter().enumerate() {
        if row.len() > header.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "row {} has {} fields, header has {}",
                    line + 2,
                    row.len(),
                    header.len()
                ),
            ));
        }
        let external_id = row
            .get(id_idx)
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .unwrap_or_else(|| format!("row{}", line + 2));
        let mut profile = EntityProfile::new(external_id);
        for &(col, attr) in &attrs {
            if col == id_idx {
                continue;
            }
            if let Some(value) = row.get(col) {
                if !value.is_empty() {
                    profile.push(attr, value.as_str());
                }
            }
        }
        collection.push(profile);
    }
    Ok(collection)
}

/// Writes a collection as headered CSV (multi-valued attributes joined with
/// `"; "`; the id column is written first as `_id`).
pub fn write_collection(out: &mut impl Write, collection: &EntityCollection) -> io::Result<()> {
    let attrs: Vec<_> = collection.attribute_ids().collect();
    let mut header = vec!["_id"];
    for &a in &attrs {
        header.push(collection.attribute_name(a));
    }
    csv::write_record(out, &header)?;
    for profile in collection.profiles() {
        let mut fields: Vec<String> = vec![profile.external_id.to_string()];
        for &a in &attrs {
            let values: Vec<&str> = profile.values_of(a).collect();
            fields.push(values.join("; "));
        }
        let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
        csv::write_record(out, &refs)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "\
id,title,year\n\
p1,\"Entity Resolution, a survey\",2016\n\
p2,Schema Matching,\n\
p3,,2014\n";

    fn read(text: &str, options: &CollectionReadOptions) -> EntityCollection {
        read_collection(&mut BufReader::new(text.as_bytes()), SourceId(0), options).unwrap()
    }

    #[test]
    fn reads_profiles_and_attributes() {
        let c = read(SAMPLE, &CollectionReadOptions::default());
        assert_eq!(c.len(), 3);
        // id column is not an attribute value; title+year only.
        assert_eq!(c.profiles()[0].nvp(), 2);
        assert_eq!(c.profiles()[0].external_id.as_ref(), "p1");
        // Empty cells are missing values.
        assert_eq!(c.profiles()[1].nvp(), 1);
        assert_eq!(c.profiles()[2].nvp(), 1);
    }

    #[test]
    fn named_id_column() {
        let text = "title,key\nFoo,k1\n";
        let c = read(
            text,
            &CollectionReadOptions {
                id_column: Some("key".to_string()),
            },
        );
        assert_eq!(c.profiles()[0].external_id.as_ref(), "k1");
        assert_eq!(c.profiles()[0].nvp(), 1);
    }

    #[test]
    fn missing_id_column_errors() {
        let text = "a,b\n1,2\n";
        let err = read_collection(
            &mut BufReader::new(text.as_bytes()),
            SourceId(0),
            &CollectionReadOptions {
                id_column: Some("nope".to_string()),
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_row_errors() {
        let text = "a,b\n1,2,3\n";
        let err = read_collection(
            &mut BufReader::new(text.as_bytes()),
            SourceId(0),
            &CollectionReadOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn roundtrip_write_read() {
        let c = read(SAMPLE, &CollectionReadOptions::default());
        let mut buf = Vec::new();
        write_collection(&mut buf, &c).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let c2 = read(
            &text,
            &CollectionReadOptions {
                id_column: Some("_id".to_string()),
            },
        );
        assert_eq!(c2.len(), c.len());
        assert_eq!(c2.nvp(), c.nvp());
        assert_eq!(c2.profiles()[0].external_id, c.profiles()[0].external_id);
    }

    #[test]
    fn empty_input_gives_empty_collection() {
        let c = read("", &CollectionReadOptions::default());
        assert!(c.is_empty());
    }
}
