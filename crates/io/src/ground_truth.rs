//! Ground truth as a two-column CSV of external ids.

use crate::csv;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::hash::FastMap;
use blast_datamodel::input::ErInput;
use std::io::{self, BufRead, Write};

/// Builds the external-id → global-ProfileId map of an input.
///
/// Clean-clean ids are resolved per side (a duplicate external id across
/// the two sources is fine); duplicated ids *within* a source resolve to
/// their first occurrence.
pub fn external_id_index(input: &ErInput) -> FastMap<(u8, Box<str>), ProfileId> {
    let mut map: FastMap<(u8, Box<str>), ProfileId> = FastMap::default();
    for (pid, source, profile) in input.iter_profiles() {
        map.entry((source.0, profile.external_id.clone()))
            .or_insert(pid);
    }
    map
}

/// Reads ground truth from a headerless two-column CSV: first column =
/// external id in source 0, second = external id in source 1 (same source
/// for dirty inputs). Unknown ids are reported as errors.
pub fn read_ground_truth(reader: &mut impl BufRead, input: &ErInput) -> io::Result<GroundTruth> {
    let index = external_id_index(input);
    let second_source = if input.is_clean_clean() { 1u8 } else { 0u8 };
    let rows = csv::read(reader)?;
    let mut gt = GroundTruth::new();
    for (line, row) in rows.iter().enumerate() {
        if row.len() < 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ground-truth row {} needs two columns", line + 1),
            ));
        }
        let a = index.get(&(0, row[0].as_str().into())).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown id {:?}", row[0]),
            )
        })?;
        let b = index
            .get(&(second_source, row[1].as_str().into()))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown id {:?}", row[1]),
                )
            })?;
        gt.insert(*a, *b);
    }
    Ok(gt)
}

/// Writes ground truth as external-id pairs (sorted for determinism).
pub fn write_ground_truth(
    out: &mut impl Write,
    gt: &GroundTruth,
    input: &ErInput,
) -> io::Result<()> {
    let mut pairs: Vec<_> = gt.iter().collect();
    pairs.sort_unstable();
    for (a, b) in pairs {
        csv::write_record(
            out,
            &[&input.profile(a).external_id, &input.profile(b).external_id],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use std::io::BufReader;

    fn input() -> ErInput {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("a1", [("x", "1")]);
        d1.push_pairs("a2", [("x", "2")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("b1", [("y", "1")]);
        ErInput::clean_clean(d1, d2)
    }

    #[test]
    fn reads_pairs_by_external_id() {
        let input = input();
        let gt = read_ground_truth(&mut BufReader::new("a1,b1\n".as_bytes()), &input).unwrap();
        assert_eq!(gt.len(), 1);
        assert!(gt.is_match(ProfileId(0), ProfileId(2)));
    }

    #[test]
    fn unknown_id_is_an_error() {
        let input = input();
        let err =
            read_ground_truth(&mut BufReader::new("a1,nope\n".as_bytes()), &input).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn same_external_id_resolves_per_source() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("x", [("a", "1")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("x", [("b", "1")]);
        let input = ErInput::clean_clean(d1, d2);
        let gt = read_ground_truth(&mut BufReader::new("x,x\n".as_bytes()), &input).unwrap();
        assert!(gt.is_match(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn roundtrip() {
        let input = input();
        let gt =
            read_ground_truth(&mut BufReader::new("a1,b1\na2,b1\n".as_bytes()), &input).unwrap();
        let mut buf = Vec::new();
        write_ground_truth(&mut buf, &gt, &input).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let gt2 = read_ground_truth(&mut BufReader::new(text.as_bytes()), &input).unwrap();
        assert_eq!(gt.len(), gt2.len());
    }
}
