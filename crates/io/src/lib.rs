//! File I/O for the BLAST workspace: a dependency-free CSV layer plus
//! loaders/writers for the domain types.
//!
//! The paper's benchmarks ship as record files with one column per
//! attribute; this crate lets a user run BLAST on their own data:
//!
//! * [`csv`] — a minimal RFC-4180 reader/writer (quoted fields, embedded
//!   separators/newlines, escaped quotes).
//! * [`collection`] — read an [`blast_datamodel::EntityCollection`] from a
//!   headered CSV (one row per profile, one column per attribute, an id
//!   column), and write one back.
//! * [`ground_truth`] — read/write match pairs as two-column CSVs of
//!   external ids.
//! * [`pairs`] — write retained comparisons with external ids resolved.
//! * [`spill`] — temp-file spill backend for the graph crate's cold tier.

pub mod collection;
pub mod csv;
pub mod ground_truth;
pub mod pairs;
pub mod spill;

pub use collection::{read_collection, write_collection, CollectionReadOptions};
pub use ground_truth::{read_ground_truth, write_ground_truth};
pub use pairs::write_pairs;
pub use spill::TempSpillFile;
