//! Writing retained comparisons with external ids resolved — the file a
//! downstream entity-matching stage consumes.

use crate::csv;
use blast_datamodel::input::ErInput;
use blast_graph::retained::RetainedPairs;
use std::io::{self, Write};

/// Writes the retained pairs as a two-column CSV of external ids (the order
/// of [`RetainedPairs`] — sorted by global id — is preserved).
pub fn write_pairs(out: &mut impl Write, pairs: &RetainedPairs, input: &ErInput) -> io::Result<()> {
    for (a, b) in pairs.iter() {
        csv::write_record(
            out,
            &[&input.profile(a).external_id, &input.profile(b).external_id],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::{ProfileId, SourceId};

    #[test]
    fn writes_external_ids() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("left-1", [("x", "1")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("right,1", [("y", "1")]);
        let input = ErInput::clean_clean(d1, d2);
        let pairs = RetainedPairs::new(vec![(ProfileId(0), ProfileId(1))]);
        let mut buf = Vec::new();
        write_pairs(&mut buf, &pairs, &input).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "left-1,\"right,1\"\n");
    }
}
