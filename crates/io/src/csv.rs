//! A minimal RFC-4180 CSV reader/writer.
//!
//! Supports quoted fields containing separators, newlines and escaped
//! quotes (`""`). Kept dependency-free on purpose: the workspace's external
//! dependency set stays at the five crates listed in DESIGN.md.

use std::io::{self, BufRead, Write};

/// Parses one CSV record from `input` starting at `pos`, appending fields
/// to `fields`. Returns the position after the record (past the newline),
/// or `None` when `pos` is at end of input.
fn parse_record(input: &str, mut pos: usize, fields: &mut Vec<String>) -> Option<usize> {
    let bytes = input.as_bytes();
    if pos >= bytes.len() {
        return None;
    }
    fields.clear();
    let mut field = String::new();
    let mut in_quotes = false;
    while pos < bytes.len() {
        let c = bytes[pos];
        if in_quotes {
            match c {
                b'"' => {
                    if bytes.get(pos + 1) == Some(&b'"') {
                        field.push('"');
                        pos += 2;
                    } else {
                        in_quotes = false;
                        pos += 1;
                    }
                }
                _ => {
                    // Copy the full UTF-8 character.
                    let ch_len = utf8_len(c);
                    field.push_str(&input[pos..pos + ch_len]);
                    pos += ch_len;
                }
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                b'\r' => {
                    pos += 1; // swallow; \n handled next
                }
                b'\n' => {
                    pos += 1;
                    fields.push(std::mem::take(&mut field));
                    return Some(pos);
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[pos..pos + ch_len]);
                    pos += ch_len;
                }
            }
        }
    }
    fields.push(field);
    Some(pos)
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a whole CSV document into records.
pub fn parse(input: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut pos = 0;
    let mut fields = Vec::new();
    while let Some(next) = parse_record(input, pos, &mut fields) {
        // Skip completely empty trailing lines.
        if !(fields.len() == 1 && fields[0].is_empty()) {
            records.push(fields.clone());
        }
        pos = next;
    }
    records
}

/// Reads and parses a CSV document from a buffered reader.
pub fn read(reader: &mut impl BufRead) -> io::Result<Vec<Vec<String>>> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    Ok(parse(&buf))
}

/// Quotes a field if needed.
pub fn escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes one record.
pub fn write_record(out: &mut impl Write, fields: &[&str]) -> io::Result<()> {
    let mut first = true;
    for f in fields {
        if !first {
            out.write_all(b",")?;
        }
        out.write_all(escape(f).as_bytes())?;
        first = false;
    }
    out.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_simple_records() {
        let rows = parse("a,b,c\n1,2,3\n");
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parses_quoted_fields() {
        let rows = parse("id,title\n1,\"Entity, Resolution\"\n2,\"say \"\"hi\"\"\"\n");
        assert_eq!(rows[1][1], "Entity, Resolution");
        assert_eq!(rows[2][1], "say \"hi\"");
    }

    #[test]
    fn parses_embedded_newlines() {
        let rows = parse("a\n\"line1\nline2\"\n");
        assert_eq!(rows[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let rows = parse("a,b\r\n1,2");
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn skips_blank_lines() {
        let rows = parse("a\n\n\nb\n");
        assert_eq!(rows, vec![vec!["a"], vec!["b"]]);
    }

    #[test]
    fn unicode_fields_survive() {
        let rows = parse("név,ville\nModène,\"émilie, romagne\"\n");
        assert_eq!(rows[1][0], "Modène");
        assert_eq!(rows[1][1], "émilie, romagne");
    }

    #[test]
    fn escape_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("q\"q"), "\"q\"\"q\"");
    }

    proptest! {
        /// Round trip: write then parse returns the original fields.
        #[test]
        fn prop_roundtrip(rows in proptest::collection::vec(
            proptest::collection::vec("[ -~éü\n\"]{0,12}", 1..5), 1..8)
        ) {
            // All rows must have the same width for a fair comparison.
            let width = rows[0].len();
            let rows: Vec<Vec<String>> = rows.into_iter().map(|mut r| {
                r.resize(width, String::new());
                r
            }).collect();
            // Skip rows that are entirely empty (parser drops blank lines).
            prop_assume!(rows.iter().all(|r| !(r.len() == 1 && r[0].is_empty())));

            let mut buf = Vec::new();
            for row in &rows {
                let fields: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
                write_record(&mut buf, &fields).unwrap();
            }
            let text = String::from_utf8(buf).unwrap();
            let parsed = parse(&text);
            prop_assert_eq!(parsed, rows);
        }
    }
}
