//! Temp-file spill backend for the cold tier.
//!
//! Implements [`blast_graph::cold::SpillBackend`] over an anonymous temp
//! file, so a budgeted pipeline can demote cold frames out of memory
//! entirely. The file is created under the OS temp dir with a
//! process-unique name and unlinked on drop; [`TempSpillFile::path`] is
//! exposed so the corruption-recovery tests can truncate or flip bytes in
//! the backing file and assert the typed [`blast_graph::cold::ColdError`]
//! surfaces instead of silent divergence.

use blast_graph::cold::SpillBackend;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// An append-only temp file behind the cold tier, deleted on drop.
#[derive(Debug)]
pub struct TempSpillFile {
    file: File,
    path: PathBuf,
    len: u64,
}

impl TempSpillFile {
    /// Creates a fresh spill file under the OS temp directory.
    pub fn create() -> Result<Self, String> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("blast-spill-{}-{}.cold", std::process::id(), seq));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| format!("create spill file {}: {e}", path.display()))?;
        Ok(TempSpillFile { file, path, len: 0 })
    }

    /// The backing file's path (for the corruption tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempSpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl SpillBackend for TempSpillFile {
    fn append(&mut self, bytes: &[u8]) -> Result<u64, String> {
        let off = self.len;
        self.file
            .seek(SeekFrom::Start(off))
            .and_then(|_| self.file.write_all(bytes))
            .map_err(|e| format!("spill append at {off}: {e}"))?;
        self.len = off + bytes.len() as u64;
        Ok(off)
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<usize, String> {
        // Reads go through a cloned handle so `&self` suffices (the cold
        // tier decodes transiently on shared read paths).
        let mut handle = self
            .file
            .try_clone()
            .map_err(|e| format!("spill clone: {e}"))?;
        handle
            .seek(SeekFrom::Start(off))
            .map_err(|e| format!("spill seek to {off}: {e}"))?;
        let mut have = 0usize;
        while have < buf.len() {
            match handle.read(&mut buf[have..]) {
                Ok(0) => break,
                Ok(n) => have += n,
                Err(e) => return Err(format!("spill read at {off}: {e}")),
            }
        }
        Ok(have)
    }

    fn truncate(&mut self) -> Result<(), String> {
        self.file
            .set_len(0)
            .map_err(|e| format!("spill truncate: {e}"))?;
        self.len = 0;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_graph::cold::{ColdError, ColdStore};

    #[test]
    fn spilled_frames_round_trip_and_unlink_on_drop() {
        let backend = TempSpillFile::create().unwrap();
        let path = backend.path().to_path_buf();
        let mut store = ColdStore::spilled(Box::new(backend));
        let a = store.put(b"cold row a");
        let b = store.put(&vec![7u8; 4096]);
        assert_eq!(store.get(a).unwrap(), b"cold row a");
        assert_eq!(store.get(b).unwrap(), vec![7u8; 4096]);
        let s = store.stats();
        assert_eq!(s.cold_bytes, 0, "spilled frames are not memory-resident");
        assert!(s.spilled_bytes > 4096);
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "spill file must be unlinked on drop");
    }

    #[test]
    fn truncated_spill_file_surfaces_a_clean_error() {
        let backend = TempSpillFile::create().unwrap();
        let path = backend.path().to_path_buf();
        let mut store = ColdStore::spilled(Box::new(backend));
        let frame = store.put(&vec![3u8; 1024]);
        // Chop the file mid-frame behind the store's back.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(100).unwrap();
        match store.get(frame) {
            Err(ColdError::Truncated { want, have, .. }) => assert!(have < want),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_spill_file_fails_its_checksum() {
        let backend = TempSpillFile::create().unwrap();
        let path = backend.path().to_path_buf();
        let mut store = ColdStore::spilled(Box::new(backend));
        let frame = store.put(&vec![9u8; 256]);
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(64)).unwrap();
        f.write_all(&[0xde, 0xad]).unwrap();
        assert!(matches!(store.get(frame), Err(ColdError::Checksum { .. })));
    }

    #[test]
    fn truncate_then_reuse() {
        let mut backend = TempSpillFile::create().unwrap();
        backend.append(b"old content").unwrap();
        backend.truncate().unwrap();
        assert_eq!(backend.len(), 0);
        let off = backend.append(b"fresh").unwrap();
        assert_eq!(off, 0);
        let mut buf = [0u8; 5];
        assert_eq!(backend.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"fresh");
    }
}
