//! `blast-obs`: the observability core — lock-free metrics, structured
//! tracing, and the export surfaces the rest of the workspace records into.
//!
//! Six generations of hand-rolled counters (`RepairStats`, commit phase
//! timings, memory-footprint gauges, per-bench aggregation) grew up
//! threaded by hand through the pipeline; none survived concurrent
//! writers and none exported anywhere. This crate replaces the plumbing
//! with one registry:
//!
//! * [`metric`] — per-thread **sharded, lock-free** [`Counter`]s,
//!   [`Gauge`]s and **log-bucketed** [`Histogram`]s (record cost is a
//!   couple of relaxed atomic adds; no locks anywhere on the hot path),
//!   plus the RAII [`SpanTimer`] and the `Lazy*` handles crates use to
//!   instrument themselves against the process-wide registry.
//! * [`registry`] — metric registration under the **dotted-name
//!   convention** (`commit.phase.decision_secs`, `repair.tier`,
//!   `treap.bulk_rebuilds`, `csr.splices`, `interner.symbols`, …) and
//!   on-demand aggregation into immutable [`MetricsSnapshot`]s whose
//!   [`MetricsSnapshot::encode_text`] emits Prometheus text exposition —
//!   the payload a future `blast serve` mounts as `/metrics`.
//! * [`commit`] — the typed views over the registry that the incremental
//!   pipeline records into ([`CommitMetrics`]) and that reports read back
//!   out ([`CommitPhases`], [`CommitTotals`]): `blast stream --stats` and
//!   `BENCH_incremental.json` both print/serialize through these, so the
//!   phase-timing schema lives in exactly one place.
//! * [`trace`] — the dependency-free JSON machinery behind the per-commit
//!   **JSONL trace journal** (`blast stream --trace out.jsonl`).
//!
//! Recording is active by default; [`set_enabled`]`(false)` turns every
//! record call into an early-out branch (used by `exp_obs` to measure the
//! instrumented-vs-baseline overhead recorded in `BENCH_obs.json`).
//!
//! The crate is deliberately **zero-dependency**: nothing below `std`, so
//! every other crate in the workspace can depend on it without cycles.

pub mod commit;
pub mod metric;
pub mod names;
pub mod registry;
pub mod trace;

pub use commit::{CommitMetrics, CommitPhases, CommitRecord, CommitTotals};
pub use metric::{Counter, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram, SpanTimer};
pub use registry::{global, HistogramSample, MetricSample, MetricsSnapshot, Registry, SampleValue};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric recording is active (the default). Checked at the top of
/// every record call; registration and snapshots work either way.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables/disables metric recording. The off state is the
/// uninstrumented baseline of the overhead benchmark (`exp_obs`); it is
/// process-wide, so production code should never flip it mid-run.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
