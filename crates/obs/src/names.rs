//! The dotted metric-name convention, in one place.
//!
//! Names are lowercase dotted paths (`subsystem.metric` or
//! `subsystem.group.metric`), segments matching `[a-z0-9_]+`. The
//! Prometheus encoder maps dots to underscores and prefixes `blast_`
//! (`commit.phase.decision_secs` → `blast_commit_phase_decision_secs`).
//!
//! Two registries exist: the **per-pipeline** registry every
//! [`crate::CommitMetrics`] owns (commit/repair/decision/cleaner/pipeline
//! families — isolated per stream, exact in tests), and the
//! **process-wide** [`crate::global`] registry that crate-internal
//! instruments record into through `Lazy*` handles (scheduler/csr/treap
//! families — structures too deep to plumb a handle into).

/// Commits absorbed (counter).
pub const COMMIT_COUNT: &str = "commit.count";
/// Whole-commit wall clock (nanosecond histogram, exported in seconds).
pub const COMMIT_TOTAL_SECS: &str = "commit.total_secs";
/// Blocking-index maintenance phase (nanosecond histogram).
pub const COMMIT_PHASE_INDEX_SECS: &str = "commit.phase.index_secs";
/// Dirty-block purging + filtering phase (nanosecond histogram).
pub const COMMIT_PHASE_CLEANING_SECS: &str = "commit.phase.cleaning_secs";
/// Snapshot CSR/slot patch phase (nanosecond histogram).
pub const COMMIT_PHASE_SNAPSHOT_SECS: &str = "commit.phase.snapshot_secs";
/// Dirty-neighbourhood artefact repair phase (nanosecond histogram).
pub const COMMIT_PHASE_REPAIR_SECS: &str = "commit.phase.repair_secs";
/// Repair-ladder reweigh machinery phase (nanosecond histogram).
pub const COMMIT_PHASE_REWEIGH_SECS: &str = "commit.phase.reweigh_secs";
/// Decision-stage phase (nanosecond histogram).
pub const COMMIT_PHASE_DECISION_SECS: &str = "commit.phase.decision_secs";
/// Candidate pairs added across commits (counter).
pub const COMMIT_PAIRS_ADDED: &str = "commit.pairs_added";
/// Candidate pairs retracted across commits (counter).
pub const COMMIT_PAIRS_RETRACTED: &str = "commit.pairs_retracted";

/// Commits repaired on the dirty-neighbourhood tier (counter).
pub const REPAIR_TIER_DIRTY: &str = "repair.tier.dirty";
/// Commits repaired on the cache-reweigh tier (counter).
pub const REPAIR_TIER_REWEIGH: &str = "repair.tier.reweigh";
/// Commits degraded to the full tier (counter).
pub const REPAIR_TIER_FULL: &str = "repair.tier.full";
/// Nodes whose neighbourhood was recomputed (counter).
pub const REPAIR_DIRTY_NODES: &str = "repair.dirty_nodes";
/// Edges re-accumulated from the blocks (counter).
pub const REPAIR_EDGES_REWEIGHED: &str = "repair.edges_reweighed";
/// Clean edges re-derived from cached accumulators (counter).
pub const REPAIR_EDGES_SWEPT: &str = "repair.edges_swept";
/// Swept edges whose weight bits moved (counter).
pub const REPAIR_EDGES_REKEYED: &str = "repair.edges_rekeyed";

/// Retention flips emitted by the decision stage (counter).
pub const DECISION_RETENTION_FLIPS: &str = "decision.retention_flips";
/// Clean-edge frontier crossers (counter).
pub const DECISION_THRESHOLD_CROSSERS: &str = "decision.threshold_crossers";

/// Snapshot CSR rows patched (counter).
pub const SNAPSHOT_PATCHED_ROWS: &str = "snapshot.patched_rows";
/// Snapshot block slots patched (counter).
pub const SNAPSHOT_PATCHED_SLOTS: &str = "snapshot.patched_slots";

/// Dirty posting keys drained per commit (counter).
pub const CLEANER_DIRTY_KEYS: &str = "cleaner.dirty_keys";
/// Profiles removed from at least one dirty key (counter).
pub const CLEANER_REMOVED_MEMBERS: &str = "cleaner.removed_members";
/// Profiles whose key list changed (counter).
pub const CLEANER_TOUCHED_PROFILES: &str = "cleaner.touched_profiles";

/// Current candidate-set size (gauge).
pub const PIPELINE_RETAINED: &str = "pipeline.retained";
/// Current cleaned-block count (gauge).
pub const PIPELINE_BLOCKS: &str = "pipeline.blocks";
/// Live edges in the decision state (gauge).
pub const PIPELINE_LIVE_EDGES: &str = "pipeline.live_edges";
/// Packed accumulator entries cached in the edge adjacency (gauge).
pub const PIPELINE_CACHED_ACCUMULATORS: &str = "pipeline.cached_accumulators";
/// Distinct token symbols interned by the block index (gauge).
pub const INTERNER_SYMBOLS: &str = "interner.symbols";

/// Bulk `OrderedWeightIndex` treap rebuilds (counter, process-wide).
pub const TREAP_BULK_REBUILDS: &str = "treap.bulk_rebuilds";

/// Mutable-CSR row splices (counter, process-wide).
pub const CSR_SPLICES: &str = "csr.splices";
/// Mutable-CSR arena compactions (counter, process-wide).
pub const CSR_COMPACTIONS: &str = "csr.compactions";

/// `parallel_work_steal` invocations (counter, process-wide).
pub const SCHEDULER_INVOCATIONS: &str = "scheduler.invocations";
/// Chunks processed by the work-stealing scheduler (counter, process-wide).
pub const SCHEDULER_CHUNKS: &str = "scheduler.chunks";
/// Chunks claimed per worker activation (histogram, process-wide) — the
/// steal balance: a flat distribution means the dynamic claiming kept
/// every worker busy. Aggregated over every pool size; the `.tN` variants
/// below split the same observations by worker-pool size so multi-core
/// runs are distinguishable on the Prometheus page.
pub const SCHEDULER_CHUNKS_PER_WORKER: &str = "scheduler.chunks_per_worker";
/// Chunks per worker on single-worker activations (histogram).
pub const SCHEDULER_CHUNKS_PER_WORKER_T1: &str = "scheduler.chunks_per_worker.t1";
/// Chunks per worker on 2-worker pools (histogram).
pub const SCHEDULER_CHUNKS_PER_WORKER_T2: &str = "scheduler.chunks_per_worker.t2";
/// Chunks per worker on 4-worker pools (histogram).
pub const SCHEDULER_CHUNKS_PER_WORKER_T4: &str = "scheduler.chunks_per_worker.t4";
/// Chunks per worker on 8-worker pools (histogram).
pub const SCHEDULER_CHUNKS_PER_WORKER_T8: &str = "scheduler.chunks_per_worker.t8";
/// Chunks per worker on any other pool size (histogram).
pub const SCHEDULER_CHUNKS_PER_WORKER_OTHER: &str = "scheduler.chunks_per_worker.other";

/// Queries answered by the serving layer (counter).
pub const SERVE_QUERIES: &str = "serve.queries";
/// Snapshot versions published to the serving epoch (counter).
pub const SERVE_SNAPSHOT_SWAPS: &str = "serve.snapshot_swaps";
/// Serve-side read latency (nanosecond histogram, exported in seconds).
pub const SERVE_READ_LATENCY: &str = "serve.read_latency_secs";
/// Retired snapshot versions awaiting epoch reclamation (gauge).
pub const SERVE_STALE_EPOCHS: &str = "serve.stale_epochs";

/// Commits that ran the shard-partitioned commit path (counter).
pub const SHARD_COMMITS: &str = "shard.commits";
/// Cross-shard candidate pairs resolved at the merge frontier (counter).
pub const SHARD_FRONTIER_PAIRS: &str = "shard.frontier_pairs";
/// Owner-shard load imbalance of the last commit, permille of the mean
/// (gauge: 1000 = perfectly balanced, 2000 = the heaviest shard carried
/// twice the mean shard load).
pub const SHARD_IMBALANCE: &str = "shard.imbalance";

/// Rows demoted to the cold tier by the residency enforcer (counter).
pub const COLD_EVICTIONS: &str = "cold.evictions";
/// Cold rows read back — transiently decoded or promoted hot (counter).
pub const COLD_REHYDRATIONS: &str = "cold.rehydrations";
/// Live cold-frame bytes resident in memory; spilled bytes excluded
/// (gauge).
pub const COLD_RESIDENT_BYTES: &str = "cold.resident_bytes";
