//! Metric registration and snapshotting.
//!
//! A [`Registry`] maps dotted names to live metric handles. Recording
//! through a handle is lock-free ([`crate::metric`]); the registry's mutex
//! guards only registration and snapshots — neither is on a hot path.
//!
//! [`Registry::snapshot`] aggregates every metric's shards into an
//! immutable [`MetricsSnapshot`]: a sorted list of `(name, value)`
//! samples. Snapshots subtract ([`MetricsSnapshot::delta_since`] — how the
//! benches scope counters to one run), merge
//! ([`MetricsSnapshot::merged`] — how a server combines the process-wide
//! and per-pipeline registries), and export
//! ([`MetricsSnapshot::encode_text`] — Prometheus text exposition, the
//! `/metrics` payload of the future `blast serve`).

use crate::metric::{bucket_bounds, Counter, Gauge, Histogram, FINITE_BUCKETS, TOTAL_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// A live metric handle held by the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Create per-subsystem registries with
/// [`Registry::new`] (the incremental pipeline owns one per stream) or use
/// the process-wide [`global`] one.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Panics unless `name` follows the dotted convention (lowercase
/// `[a-z0-9_]` segments joined by single dots).
fn validate_name(name: &str) {
    let ok = !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        });
    assert!(
        ok,
        "invalid metric name {name:?} (want dotted lowercase segments)"
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or registers a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        validate_name(name);
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Gets or registers a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        validate_name(name);
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Gets or registers a plain value histogram (`unit = 1.0`).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_unit(name, 1.0)
    }

    /// Gets or registers a histogram whose raw unit is worth `unit` in
    /// exported terms (latency histograms record nanoseconds with
    /// `unit = 1e-9` and export seconds). Panics if the name is already
    /// registered with a different unit.
    pub fn histogram_with_unit(&self, name: &str, unit: f64) -> Arc<Histogram> {
        validate_name(name);
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(unit))))
        {
            Metric::Histogram(h) => {
                assert!(
                    h.unit() == unit,
                    "metric {name:?} already registered with unit {}, asked for {unit}",
                    h.unit()
                );
                Arc::clone(h)
            }
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Aggregates every metric into an immutable snapshot. Concurrent
    /// writers keep recording while the shards are summed; each metric's
    /// value is internally consistent, the set as a whole is a point-in-
    /// time view to within in-flight records.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().unwrap();
        let samples = metrics
            .iter()
            .map(|(name, metric)| MetricSample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.value()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.value()),
                    Metric::Histogram(h) => SampleValue::Histogram(HistogramSample {
                        count: h.count(),
                        raw_sum: h.raw_sum(),
                        unit: h.unit(),
                        buckets: h.bucket_counts(),
                    }),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// The process-wide registry (crate-internal instruments record here via
/// the `Lazy*` handles; `/metrics` exports it alongside any per-pipeline
/// registries).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's aggregated value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The dotted metric name.
    pub name: String,
    /// The aggregated value.
    pub value: SampleValue,
}

/// An aggregated metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistogramSample),
}

/// An aggregated histogram: exact count and raw sum plus the merged
/// log-bucket counts (last slot is the `+Inf` overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Exact number of recorded samples.
    pub count: u64,
    /// Exact sum in raw units.
    pub raw_sum: u64,
    /// Exported value of one raw unit.
    pub unit: f64,
    /// Non-cumulative per-bucket counts, bucket-index order.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// The sum in exported units (seconds for latency histograms).
    pub fn sum(&self) -> f64 {
        self.raw_sum as f64 * self.unit
    }

    /// The mean in exported units, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum() / self.count as f64)
    }

    /// Nearest-rank quantile estimate in exported units (`q` in `[0, 1]`).
    ///
    /// Resolution is the bucket width (≤ 25 % relative); the estimate is
    /// the midpoint of the bucket holding the rank, so the true quantile
    /// lies within that bucket's bounds — the property the tests pin
    /// against a sorted reference. Returns `f64::INFINITY` when the rank
    /// falls in the overflow bucket, `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                if i >= FINITE_BUCKETS {
                    return Some(f64::INFINITY);
                }
                let (lo, hi) = bucket_bounds(i);
                return Some((lo + hi) as f64 / 2.0 * self.unit);
            }
        }
        unreachable!("cumulative bucket counts reach the total count")
    }

    /// Inclusive raw-value bounds of the bucket holding `q`'s rank, or
    /// `None` for an empty histogram / overflow rank. Test/diagnostic aid.
    pub fn quantile_bucket_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return (i < FINITE_BUCKETS).then(|| bucket_bounds(i));
            }
        }
        None
    }

    fn saturating_sub(&self, earlier: &HistogramSample) -> HistogramSample {
        HistogramSample {
            count: self.count.saturating_sub(earlier.count),
            raw_sum: self.raw_sum.saturating_sub(earlier.raw_sum),
            unit: self.unit,
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// An immutable point-in-time aggregation of one registry (sorted by
/// metric name).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// The samples, sorted by name.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    fn find(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// A counter's total (0 when absent — counters materialise on first
    /// record, so "never touched" and "zero" coincide).
    pub fn counter(&self, name: &str) -> u64 {
        match self.find(name) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's level, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name) {
            Some(SampleValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's aggregation, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        match self.find(name) {
            Some(SampleValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The monotone difference `self − earlier`: counters and histograms
    /// subtract (scoping totals to a window), gauges keep their current
    /// level. Metrics absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let value = match (&s.value, earlier.find(&s.name)) {
                    (SampleValue::Counter(v), Some(SampleValue::Counter(e))) => {
                        SampleValue::Counter(v.saturating_sub(*e))
                    }
                    (SampleValue::Histogram(h), Some(SampleValue::Histogram(e))) => {
                        SampleValue::Histogram(h.saturating_sub(e))
                    }
                    (v, _) => v.clone(),
                };
                MetricSample {
                    name: s.name.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Merges two snapshots into one sorted sample list (e.g. the global
    /// and a pipeline registry for one `/metrics` page). On a name
    /// collision `self`'s sample wins.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut samples = self.samples.clone();
        for s in &other.samples {
            if self.find(&s.name).is_none() {
                samples.push(s.clone());
            }
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { samples }
    }

    /// Encodes the snapshot in Prometheus text exposition format
    /// (version 0.0.4): dotted names become `blast_`-prefixed underscore
    /// names, counters/gauges one sample line each, histograms the
    /// standard cumulative `_bucket{le="…"}` series plus `_sum`/`_count`.
    /// Bucket bounds are emitted in exported units; only non-empty buckets
    /// get a line (plus the mandatory `+Inf`), keeping the page compact.
    pub fn encode_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let name = prom_name(&s.name);
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                SampleValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if i >= FINITE_BUCKETS {
                            break;
                        }
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let (_, hi) = bucket_bounds(i);
                        // `le` is inclusive; the bucket's inclusive raw
                        // upper bound scaled to exported units.
                        let le = fmt_f64(hi as f64 * h.unit);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }
}

/// Formats an f64 for Prometheus: finite shortest-roundtrip, exponent
/// notation for the very small/large (Go `ParseFloat` accepts both).
fn fmt_f64(v: f64) -> String {
    if v != 0.0 && (v.abs() < 1e-3 || v.abs() >= 1e15) {
        format!("{v:e}")
    } else {
        format!("{v}")
    }
}

/// Maps a dotted metric name to its Prometheus identifier.
pub(crate) fn prom_name(name: &str) -> String {
    format!("blast_{}", name.replace('.', "_"))
}

/// Asserts that `TOTAL_BUCKETS` matches the sample layout (compile-time
/// coupling between the metric and snapshot halves).
#[allow(dead_code)]
const _: [(); TOTAL_BUCKETS] = [(); FINITE_BUCKETS + 1];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counter("x.hits"), 7);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn uppercase_names_are_rejected() {
        Registry::new().counter("x.Hits");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("x.hits");
        r.gauge("x.hits");
    }

    #[test]
    fn delta_since_scopes_counters_and_histograms() {
        let r = Registry::new();
        let c = r.counter("runs.widgets");
        let h = r.histogram("runs.sizes");
        c.add(10);
        h.record(5);
        let before = r.snapshot();
        c.add(7);
        h.record(9);
        h.record(9);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("runs.widgets"), 7);
        let hs = delta.histogram("runs.sizes").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.raw_sum, 18);
    }

    #[test]
    fn merged_prefers_self_and_stays_sorted() {
        let a = Registry::new();
        a.counter("a.one").add(1);
        a.counter("shared.n").add(5);
        let b = Registry::new();
        b.counter("b.two").add(2);
        b.counter("shared.n").add(9);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.counter("a.one"), 1);
        assert_eq!(m.counter("b.two"), 2);
        assert_eq!(m.counter("shared.n"), 5, "self wins collisions");
        let names: Vec<_> = m.samples().iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn encode_text_is_wellformed_prometheus() {
        let r = Registry::new();
        r.counter("commit.count").add(3);
        r.gauge("pipeline.retained").set(-2);
        let h = r.histogram_with_unit("commit.total_secs", 1e-9);
        h.record(1_000); // 1 µs
        h.record(3_000_000); // 3 ms
        let text = r.snapshot().encode_text();

        let mut series: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap();
                let kind = it.next().unwrap();
                assert!(matches!(kind, "counter" | "gauge" | "histogram"));
                assert!(name.starts_with("blast_"));
                series.push(name);
                continue;
            }
            // Sample lines: `name[{le="x"}] value`.
            let (name_part, value) = line.rsplit_once(' ').expect("sample line");
            let metric = name_part.split('{').next().unwrap();
            assert!(
                metric
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_'),
                "bad metric identifier {metric:?}"
            );
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value {value:?}"
            );
        }
        assert_eq!(
            series,
            vec![
                "blast_commit_count",
                "blast_commit_total_secs",
                "blast_pipeline_retained"
            ]
        );
        // Cumulative buckets end at +Inf == count.
        let inf: Vec<&str> = text.lines().filter(|l| l.contains("le=\"+Inf\"")).collect();
        assert_eq!(inf, vec!["blast_commit_total_secs_bucket{le=\"+Inf\"} 2"]);
        assert!(text.contains("blast_commit_total_secs_count 2"));
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("blast_commit_total_secs_bucket") && !l.contains("+Inf"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "cumulative buckets");
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let r = Registry::new();
        let h = r.histogram("q.values");
        for v in 0..1000u64 {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("q.values").unwrap();
        let p50 = hs.quantile(0.5).unwrap();
        // Bucket resolution: the true median (499/500) is inside the
        // reported bucket, whose width is ≤ 25 % of its lower bound.
        let (lo, hi) = hs.quantile_bucket_bounds(0.5).unwrap();
        assert!(
            (lo as f64..=hi as f64).contains(&499.0) || (lo as f64..=hi as f64).contains(&500.0)
        );
        assert!(p50 >= lo as f64 && p50 <= hi as f64);
        assert_eq!(hs.quantile(0.0).unwrap(), 0.0);
        assert!(hs.quantile(1.0).unwrap() >= 896.0);
    }

    #[test]
    fn overflow_quantile_is_infinite() {
        let r = Registry::new();
        let h = r.histogram("q.overflow");
        h.record(u64::MAX);
        let snap = r.snapshot();
        let hs = snap.histogram("q.overflow").unwrap();
        assert_eq!(hs.quantile(0.5), Some(f64::INFINITY));
        assert_eq!(hs.quantile_bucket_bounds(0.5), None);
        // The +Inf bucket still shows in the export and equals the count.
        let text = snap.encode_text();
        assert!(text.contains("blast_q_overflow_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let r = Registry::new();
        r.histogram("q.empty");
        let snap = r.snapshot();
        assert_eq!(snap.histogram("q.empty").unwrap().quantile(0.5), None);
        assert_eq!(snap.histogram("q.empty").unwrap().mean(), None);
    }
}
