//! The metric primitives: per-thread sharded, lock-free counters and
//! gauges, log-bucketed latency histograms, and the RAII span timer.
//!
//! **Sharding.** Every thread is assigned a fixed shard slot (round-robin
//! over [`SHARDS`] lanes at first use); a record call touches only its own
//! shard's cache lines, so concurrent writers never contend on one atomic.
//! Reading a metric sums the shards — reads are rare (snapshots), writes
//! are the hot path. All record operations are single relaxed
//! `fetch_add`s: lock-free, wait-free, and safe from any thread including
//! the `parallel_work_steal` workers.
//!
//! **Histogram buckets.** Log-linear ("log-bucketed"): values `0..4` get
//! their own unit buckets, and every power-of-two octave above that is cut
//! into 4 sub-buckets, giving a ≤ 12.5 % bucket width everywhere — enough
//! for latency quantiles without per-sample allocation. Values at or above
//! 2⁴⁰ raw units (~18 minutes in nanoseconds) land in a single overflow
//! bucket exported as `+Inf`. Recording is a `leading_zeros` + three
//! relaxed adds — low single-digit nanoseconds.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Number of write lanes. More than the container's cores so round-robin
/// assignment rarely aliases two busy threads onto one lane.
pub const SHARDS: usize = 16;

/// The round-robin source of per-thread shard slots.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// This thread's shard slot (assigned on first use, fixed thereafter).
#[inline]
fn shard_id() -> usize {
    SHARD.with(|s| *s)
}

/// One cache-line-isolated atomic lane.
#[repr(align(128))]
#[derive(Default)]
struct Lane(AtomicU64);

/// A monotonically increasing, per-thread-sharded counter.
pub struct Counter {
    lanes: [Lane; SHARDS],
}

impl Counter {
    pub(crate) fn new() -> Self {
        Self {
            lanes: std::array::from_fn(|_| Lane::default()),
        }
    }

    /// Adds `n` (a single relaxed `fetch_add` on this thread's lane).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.lanes[shard_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sums the shards; snapshot-path only).
    pub fn value(&self) -> u64 {
        self.lanes.iter().map(|l| l.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// A last-write-wins signed gauge (single atomic: gauges are set once per
/// commit by one writer, never contended like counters).
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by a signed delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

/// Sub-buckets per octave as a bit count (2 → 4 sub-buckets, ≤ 12.5 %
/// relative bucket width).
const SUB_BITS: u32 = 2;
const SUB: u64 = 1 << SUB_BITS;
/// Values at or above `2^TRACK_BITS` raw units land in the overflow
/// (`+Inf`) bucket.
const TRACK_BITS: u32 = 40;
/// Finite buckets: `SUB` unit buckets plus `SUB` per tracked octave.
pub(crate) const FINITE_BUCKETS: usize = (SUB + (TRACK_BITS - SUB_BITS) as u64 * SUB) as usize;
/// Finite buckets plus the overflow bucket.
pub(crate) const TOTAL_BUCKETS: usize = FINITE_BUCKETS + 1;

/// The bucket a raw value lands in.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb >= TRACK_BITS {
        return FINITE_BUCKETS;
    }
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize * (msb - SUB_BITS) as usize + SUB as usize + sub
}

/// Inclusive `[lower, upper]` raw-value bounds of a finite bucket
/// (`bucket_index(v)` is in `bucket_bounds(i)` iff it returned `i`).
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < FINITE_BUCKETS);
    if (i as u64) < SUB {
        return (i as u64, i as u64);
    }
    let octave = (i - SUB as usize) as u32 / SUB as u32;
    let sub = (i as u64 - SUB) % SUB;
    let lower = (SUB + sub) << octave;
    (lower, lower + (1u64 << octave) - 1)
}

/// One shard of a histogram: bucket lanes plus exact count/sum. The shard
/// is its own aligned region, so two threads recording concurrently never
/// share a cache line.
#[repr(align(128))]
struct HistLane {
    buckets: [AtomicU64; TOTAL_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistLane {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed, per-thread-sharded histogram of `u64` raw values.
///
/// `unit` is the exported value of one raw unit — latency histograms
/// record **nanoseconds** with `unit = 1e-9`, so exports and quantiles
/// read in seconds while the hot path never touches floating point. The
/// exact `count` and `sum` are maintained alongside the buckets (shard
/// merges are plain sums, so concurrent totals are exact; only quantiles
/// are bucket-resolution estimates).
pub struct Histogram {
    lanes: Box<[HistLane; SHARDS]>,
    unit: f64,
}

impl Histogram {
    pub(crate) fn new(unit: f64) -> Self {
        assert!(unit > 0.0, "histogram unit must be positive");
        let lanes: Vec<HistLane> = (0..SHARDS).map(|_| HistLane::new()).collect();
        let lanes: Box<[HistLane; SHARDS]> = match lanes.try_into() {
            Ok(a) => a,
            Err(_) => unreachable!("built SHARDS lanes"),
        };
        Self { lanes, unit }
    }

    /// Exported value of one raw unit (1.0 for plain value histograms,
    /// 1e-9 for nanosecond-recorded latency histograms).
    pub fn unit(&self) -> f64 {
        self.unit
    }

    /// Records one raw value.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let lane = &self.lanes[shard_id()];
        lane.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        lane.count.fetch_add(1, Ordering::Relaxed);
        lane.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (latency histograms; pair with
    /// `unit = 1e-9`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records a duration given in (non-negative) seconds.
    #[inline]
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9).round() as u64);
    }

    /// Total recorded samples (exact across threads).
    pub fn count(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Exact raw-unit sum across threads.
    pub fn raw_sum(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.sum.load(Ordering::Relaxed))
            .sum()
    }

    /// Merged per-bucket counts (index order; last slot is the overflow).
    pub(crate) fn bucket_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; TOTAL_BUCKETS];
        for lane in self.lanes.iter() {
            for (slot, b) in out.iter_mut().zip(lane.buckets.iter()) {
                *slot += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("unit", &self.unit)
            .finish()
    }
}

/// RAII span timer: records the elapsed wall-clock into a nanosecond
/// histogram when dropped.
///
/// ```
/// let registry = blast_obs::Registry::new();
/// let hist = registry.histogram_with_unit("commit.total_secs", 1e-9);
/// {
///     let _span = blast_obs::SpanTimer::start(&hist);
///     // … timed work …
/// } // records here
/// assert_eq!(hist.count(), 1);
/// ```
#[must_use = "a span timer records when dropped; binding it to _ drops immediately"]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> SpanTimer<'a> {
    /// Starts the span.
    pub fn start(hist: &'a Histogram) -> Self {
        Self {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Seconds elapsed so far (the span keeps running).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Abandons the span without recording.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

/// A counter on the process-wide registry, registered on first use — the
/// handle pattern for instrumenting crates that have no registry to
/// plumb (`static SPLICES: LazyCounter = LazyCounter::new(names::CSR_SPLICES);`).
/// After the first call the cost over a plain [`Counter`] is one atomic
/// load.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declares the handle (no registration yet).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter (registers on first use).
    #[inline]
    pub fn get(&self) -> &Counter {
        self.cell.get_or_init(|| crate::global().counter(self.name))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }
}

/// A gauge on the process-wide registry, registered on first use.
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declares the handle (no registration yet).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying gauge (registers on first use).
    #[inline]
    pub fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| crate::global().gauge(self.name))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.get().set(v);
    }
}

/// A histogram on the process-wide registry, registered on first use.
pub struct LazyHistogram {
    name: &'static str,
    unit: f64,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declares a plain value histogram (`unit = 1.0`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            unit: 1.0,
            cell: OnceLock::new(),
        }
    }

    /// Declares a histogram with an explicit raw-unit scale (1e-9 for
    /// nanosecond-recorded latency).
    pub const fn with_unit(name: &'static str, unit: f64) -> Self {
        Self {
            name,
            unit,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram (registers on first use).
    #[inline]
    pub fn get(&self) -> &Histogram {
        self.cell
            .get_or_init(|| crate::global().histogram_with_unit(self.name, self.unit))
    }

    /// Records one raw value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.get().record(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_exactly() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.value(), -3);
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for i in 0..FINITE_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i > 0 {
                let (_, prev_hi) = bucket_bounds(i - 1);
                assert_eq!(prev_hi + 1, lo, "buckets {i} are contiguous");
            }
        }
        // The first value past the last finite bucket overflows.
        let (_, last_hi) = bucket_bounds(FINITE_BUCKETS - 1);
        assert_eq!(last_hi, (1u64 << TRACK_BITS) - 1);
        assert_eq!(bucket_index(1u64 << TRACK_BITS), FINITE_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn bucket_width_is_at_most_an_eighth() {
        for i in SUB as usize..FINITE_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (hi - lo) as f64 <= lo as f64 / 4.0,
                "bucket {i} [{lo}, {hi}] wider than 25% of its lower bound"
            );
        }
    }

    #[test]
    fn histogram_count_and_sum_are_exact_under_concurrency() {
        let h = Histogram::new(1.0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                });
            }
        });
        assert_eq!(h.count(), 200_000);
        let expected: u64 = (0..8u64)
            .map(|t| (0..25_000u64).map(|i| t * 1_000 + (i % 97)).sum::<u64>())
            .sum();
        assert_eq!(h.raw_sum(), expected, "shard-merge totals are exact");
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 200_000);
    }

    #[test]
    fn span_timer_records_once_and_discard_does_not() {
        let h = Histogram::new(1e-9);
        {
            let _span = SpanTimer::start(&h);
        }
        assert_eq!(h.count(), 1);
        SpanTimer::start(&h).discard();
        assert_eq!(h.count(), 1);
    }
}
