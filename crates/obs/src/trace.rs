//! Dependency-free JSON machinery for the structured trace journal.
//!
//! The trace journal is JSONL: one self-contained JSON object per line,
//! one line per commit (`blast stream --trace out.jsonl`). This module
//! owns the encoding primitives — [`JsonObject`] builds a flat object
//! field by field, [`escape_json`] handles string escaping, and
//! [`is_valid_json`] is the validating scanner the tests (and the CI
//! schema check) lean on. No serde: the rest of the workspace hand-rolls
//! its JSON too, and the journal schema is flat enough that a builder is
//! clearer than a derive.

use std::fmt::Write as _;

/// Escapes `s` for placement inside a JSON string literal (quotes not
/// included).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one flat JSON object — a trace-journal event line.
///
/// Fields are emitted in insertion order. Values are rendered eagerly, so
/// the builder is a thin `String` wrapper with no intermediate tree.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object (`{}` until fields are added).
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push_str(", ");
        }
        let _ = write!(self.body, "\"{}\": ", escape_json(key));
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(mut self, key: &str, value: i64) -> Self {
        self.push_key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a float field with six decimal places (the journal's timing
    /// precision: microsecond resolution on second-scale values). Non-finite
    /// values are encoded as `null` — JSON has no Inf/NaN.
    pub fn field_f64(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            let _ = write!(self.body, "{value:.6}");
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Adds a string field (escaped).
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        let _ = write!(self.body, "\"{}\"", escape_json(value));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.push_key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array built
    /// elsewhere, e.g. [`crate::CommitPhases::bench_json`]). The caller
    /// vouches that `raw` is valid JSON.
    pub fn field_raw(mut self, key: &str, raw: &str) -> Self {
        self.push_key(key);
        self.body.push_str(raw);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// A small validating JSON scanner: returns whether `s` is exactly one
/// well-formed JSON value. Used by the journal tests; CI re-validates the
/// emitted files with a real parser. Accepts the full grammar (objects,
/// arrays, strings with escapes, numbers, literals); rejects trailing
/// garbage, trailing commas, unterminated strings, and bad escapes.
pub fn is_valid_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        _ => false,
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    if *pos + 6 > b.len()
                        || !b[*pos + 2..*pos + 6].iter().all(u8::is_ascii_hexdigit)
                    {
                        return false;
                    }
                    *pos += 6;
                }
                _ => return false,
            },
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: "0" or [1-9][0-9]*.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_json() {
        let line = JsonObject::new()
            .field_u64("seq", 3)
            .field_str("tier", "dirty")
            .field_f64("decision_secs", 0.000123456789)
            .field_i64("delta", -4)
            .field_bool("degraded", false)
            .field_raw("phases", "{\"index_maintenance_secs\": 0.000001}")
            .finish();
        assert!(is_valid_json(&line), "{line}");
        assert!(line.starts_with("{\"seq\": 3"));
        assert!(line.contains("\"tier\": \"dirty\""));
        assert!(line.contains("\"decision_secs\": 0.000123"));
        assert!(line.contains("\"degraded\": false"));
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert!(is_valid_json("{}"));
    }

    #[test]
    fn escaping_covers_control_and_quote_chars() {
        let s = escape_json("a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
        let line = JsonObject::new().field_str("k", "a\"b\\c\nd").finish();
        assert!(is_valid_json(&line), "{line}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObject::new()
            .field_f64("inf", f64::INFINITY)
            .field_f64("nan", f64::NAN)
            .finish();
        assert_eq!(line, "{\"inf\": null, \"nan\": null}");
        assert!(is_valid_json(&line));
    }

    #[test]
    fn scanner_accepts_the_grammar() {
        for good in [
            "{}",
            "[]",
            "[1, 2.5, -3e-4, \"x\", true, false, null]",
            "{\"a\": {\"b\": [1]}, \"c\": \"\\u0041\"}",
            "  42  ",
            "\"\"",
            "0.5",
            "-0",
        ] {
            assert!(is_valid_json(good), "rejected {good}");
        }
    }

    #[test]
    fn scanner_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2,]",
            "{\"a\" 1}",
            "\"unterminated",
            "\"bad \\x escape\"",
            "01",
            "1.",
            "1e",
            "--1",
            "{} trailing",
            "nul",
            "{'a': 1}",
        ] {
            assert!(!is_valid_json(bad), "accepted {bad}");
        }
    }
}
