//! Typed views over the registry for the commit path.
//!
//! Before this crate, the per-phase wall-clock split (`CommitTimings`) and
//! the repair diagnostics (`RepairStats`) were hand-aggregated in three
//! places: the pipeline, `blast stream --stats`, and `exp_incremental`'s
//! JSON writer. The registry is now the one aggregation point:
//!
//! * [`CommitMetrics`] — the write side. The incremental pipeline owns one
//!   per stream (its own [`Registry`], so concurrent pipelines and tests
//!   never bleed into each other) and records one [`CommitRecord`] per
//!   commit.
//! * [`CommitPhases`] — the per-commit phase split. The incremental
//!   crate's `CommitTimings` is a re-export of this type, so the
//!   `BENCH_incremental.json` phase schema ([`CommitPhases::bench_json`])
//!   and the `--stats` phase line ([`CommitPhases::human_micros`]) are
//!   formatted by exactly one implementation.
//! * [`CommitTotals`] — the read side: everything the commit path recorded,
//!   reconstructed from a [`MetricsSnapshot`] (or a
//!   [`MetricsSnapshot::delta_since`] window of one).

use crate::metric::{Counter, Gauge, Histogram};
use crate::names;
use crate::registry::{MetricsSnapshot, Registry};
use std::fmt::Write as _;
use std::sync::Arc;

/// Wall-clock split of one commit across the pipeline stages (the phase
/// columns of `BENCH_incremental.json`). Re-exported by the incremental
/// crate as `CommitTimings`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommitPhases {
    /// Blocking-index maintenance: token re-keying + posting diffs of the
    /// micro-batch's mutations plus the dirty-state drain.
    pub index_secs: f64,
    /// Incremental purging + filtering over the dirty blocks.
    pub cleaning_secs: f64,
    /// Patching the owned graph snapshot (CSR row splices + slot stats).
    pub snapshot_secs: f64,
    /// Dirty-neighbourhood artefact repair.
    pub repair_secs: f64,
    /// The repair ladder's reweigh machinery (degree-delta maintenance
    /// plus the tier-2 clean-edge cache sweep).
    pub reweigh_secs: f64,
    /// The decision stage: frontier maintenance, flip emission,
    /// retained-set surgery.
    pub decision_secs: f64,
}

impl CommitPhases {
    /// Total commit wall-clock.
    pub fn total_secs(&self) -> f64 {
        self.index_secs
            + self.cleaning_secs
            + self.snapshot_secs
            + self.repair_secs
            + self.reweigh_secs
            + self.decision_secs
    }

    /// Element-wise accumulation (for aggregating over a run).
    pub fn accumulate(&mut self, other: &CommitPhases) {
        self.index_secs += other.index_secs;
        self.cleaning_secs += other.cleaning_secs;
        self.snapshot_secs += other.snapshot_secs;
        self.repair_secs += other.repair_secs;
        self.reweigh_secs += other.reweigh_secs;
        self.decision_secs += other.decision_secs;
    }

    /// Element-wise mean over `commits` (identity for `commits == 0`).
    pub fn mean(&self, commits: usize) -> CommitPhases {
        let n = commits.max(1) as f64;
        CommitPhases {
            index_secs: self.index_secs / n,
            cleaning_secs: self.cleaning_secs / n,
            snapshot_secs: self.snapshot_secs / n,
            repair_secs: self.repair_secs / n,
            reweigh_secs: self.reweigh_secs / n,
            decision_secs: self.decision_secs / n,
        }
    }

    /// Reads the six phase totals out of a snapshot (sums of the
    /// `commit.phase.*` nanosecond histograms, in seconds). Apply to a
    /// [`MetricsSnapshot::delta_since`] window to scope to one run.
    pub fn from_snapshot(s: &MetricsSnapshot) -> CommitPhases {
        let sum = |name: &str| s.histogram(name).map_or(0.0, |h| h.sum());
        CommitPhases {
            index_secs: sum(names::COMMIT_PHASE_INDEX_SECS),
            cleaning_secs: sum(names::COMMIT_PHASE_CLEANING_SECS),
            snapshot_secs: sum(names::COMMIT_PHASE_SNAPSHOT_SECS),
            repair_secs: sum(names::COMMIT_PHASE_REPAIR_SECS),
            reweigh_secs: sum(names::COMMIT_PHASE_REWEIGH_SECS),
            decision_secs: sum(names::COMMIT_PHASE_DECISION_SECS),
        }
    }

    /// The `BENCH_incremental.json` phase object — the one serialization
    /// of the phase schema (`exp_incremental` and the trace journal both
    /// embed it).
    pub fn bench_json(&self) -> String {
        format!(
            "{{\"index_maintenance_secs\": {:.6}, \"cleaning_secs\": {:.6}, \"snapshot_patch_secs\": {:.6}, \"graph_repair_secs\": {:.6}, \"reweigh_secs\": {:.6}, \"decision_secs\": {:.6}}}",
            self.index_secs,
            self.cleaning_secs,
            self.snapshot_secs,
            self.repair_secs,
            self.reweigh_secs,
            self.decision_secs,
        )
    }

    /// The human phase line of `blast stream --stats`, in microseconds.
    pub fn human_micros(&self) -> String {
        format!(
            "{:.1}us index / {:.1}us clean / {:.1}us snapshot / {:.1}us repair / {:.1}us reweigh / {:.1}us decision",
            self.index_secs * 1e6,
            self.cleaning_secs * 1e6,
            self.snapshot_secs * 1e6,
            self.repair_secs * 1e6,
            self.reweigh_secs * 1e6,
            self.decision_secs * 1e6,
        )
    }
}

/// One commit's worth of observations, handed to
/// [`CommitMetrics::record`]. Plain integers — the pipeline maps its
/// `RepairStats`/delta/footprint counters into this and the registry does
/// the aggregation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitRecord<'a> {
    /// The per-phase wall-clock split.
    pub phases: Option<&'a CommitPhases>,
    /// Repair-ladder rung (0 = dirty, 1 = reweigh, 2 = full).
    pub tier: usize,
    /// Nodes whose neighbourhood was recomputed.
    pub dirty_nodes: u64,
    /// Snapshot CSR rows patched.
    pub patched_rows: u64,
    /// Snapshot block slots patched.
    pub patched_slots: u64,
    /// Edges re-accumulated from the blocks.
    pub edges_reweighed: u64,
    /// Clean edges re-derived from cached accumulators.
    pub edges_swept: u64,
    /// Swept edges whose weight bits moved.
    pub edges_rekeyed: u64,
    /// Retention flips (|added| + |retracted|).
    pub retention_flips: u64,
    /// Clean-edge frontier crossers.
    pub threshold_crossers: u64,
    /// Candidate pairs added this commit.
    pub pairs_added: u64,
    /// Candidate pairs retracted this commit.
    pub pairs_retracted: u64,
    /// Dirty posting keys the cleaner drained.
    pub cleaner_dirty_keys: u64,
    /// Profiles removed from at least one dirty key.
    pub cleaner_removed_members: u64,
    /// Profiles whose key list changed.
    pub cleaner_touched_profiles: u64,
    /// 1 when this commit ran under a multi-shard plan (S > 1).
    pub sharded_commits: u64,
    /// Edges processed whose endpoints live in different shards.
    pub frontier_pairs: u64,
    /// Candidate-set size after the commit (gauge).
    pub retained: i64,
    /// Cleaned-block count after the commit (gauge).
    pub blocks: i64,
    /// Live edges after the commit (gauge).
    pub live_edges: i64,
    /// Cached accumulator entries after the commit (gauge).
    pub cached_accumulators: i64,
    /// Interned token symbols after the commit (gauge).
    pub interned_symbols: i64,
    /// Owner-shard load imbalance of this commit, permille of the mean
    /// shard load (gauge; 1000 = perfectly balanced).
    pub shard_imbalance_permille: i64,
    /// Rows demoted to the cold tier this commit.
    pub cold_evictions: u64,
    /// Cold rows read back this commit (transient decodes + promotions).
    pub cold_rehydrations: u64,
    /// Cold-frame bytes resident in memory after the commit (gauge;
    /// spilled bytes excluded).
    pub cold_resident_bytes: i64,
}

/// The commit path's pre-registered write handles over one [`Registry`].
///
/// Construction registers every `commit.*` / `repair.*` / `decision.*` /
/// `snapshot.*` / `cleaner.*` / `pipeline.*` metric; recording one commit
/// is ~20 relaxed atomic adds, no locks.
#[derive(Debug)]
pub struct CommitMetrics {
    registry: Arc<Registry>,
    commits: Arc<Counter>,
    total_secs: Arc<Histogram>,
    phase_hists: [Arc<Histogram>; 6],
    tiers: [Arc<Counter>; 3],
    counters: [Arc<Counter>; 17],
    gauges: [Arc<Gauge>; 7],
}

/// Index order of `CommitMetrics::counters` (kept private; the names are
/// the contract).
const COUNTER_NAMES: [&str; 17] = [
    names::REPAIR_DIRTY_NODES,
    names::SNAPSHOT_PATCHED_ROWS,
    names::SNAPSHOT_PATCHED_SLOTS,
    names::REPAIR_EDGES_REWEIGHED,
    names::REPAIR_EDGES_SWEPT,
    names::REPAIR_EDGES_REKEYED,
    names::DECISION_RETENTION_FLIPS,
    names::DECISION_THRESHOLD_CROSSERS,
    names::COMMIT_PAIRS_ADDED,
    names::COMMIT_PAIRS_RETRACTED,
    names::CLEANER_DIRTY_KEYS,
    names::CLEANER_REMOVED_MEMBERS,
    names::CLEANER_TOUCHED_PROFILES,
    names::SHARD_COMMITS,
    names::SHARD_FRONTIER_PAIRS,
    names::COLD_EVICTIONS,
    names::COLD_REHYDRATIONS,
];

const GAUGE_NAMES: [&str; 7] = [
    names::PIPELINE_RETAINED,
    names::PIPELINE_BLOCKS,
    names::PIPELINE_LIVE_EDGES,
    names::PIPELINE_CACHED_ACCUMULATORS,
    names::INTERNER_SYMBOLS,
    names::SHARD_IMBALANCE,
    names::COLD_RESIDENT_BYTES,
];

impl CommitMetrics {
    /// Registers the commit-path metrics on a fresh registry.
    pub fn new() -> Self {
        Self::on(Arc::new(Registry::new()))
    }

    /// Registers the commit-path metrics on `registry`.
    pub fn on(registry: Arc<Registry>) -> Self {
        let h = |name| registry.histogram_with_unit(name, 1e-9);
        let phase_hists = [
            h(names::COMMIT_PHASE_INDEX_SECS),
            h(names::COMMIT_PHASE_CLEANING_SECS),
            h(names::COMMIT_PHASE_SNAPSHOT_SECS),
            h(names::COMMIT_PHASE_REPAIR_SECS),
            h(names::COMMIT_PHASE_REWEIGH_SECS),
            h(names::COMMIT_PHASE_DECISION_SECS),
        ];
        let tiers = [
            registry.counter(names::REPAIR_TIER_DIRTY),
            registry.counter(names::REPAIR_TIER_REWEIGH),
            registry.counter(names::REPAIR_TIER_FULL),
        ];
        let counters = COUNTER_NAMES.map(|n| registry.counter(n));
        let gauges = GAUGE_NAMES.map(|n| registry.gauge(n));
        Self {
            commits: registry.counter(names::COMMIT_COUNT),
            total_secs: registry.histogram_with_unit(names::COMMIT_TOTAL_SECS, 1e-9),
            phase_hists,
            tiers,
            counters,
            gauges,
            registry,
        }
    }

    /// The backing registry (snapshot it to read the totals back).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Convenience: a snapshot of the backing registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Records one commit. When `phases` is present, `commit.total_secs`
    /// is recorded as their sum.
    pub fn record(&self, r: &CommitRecord<'_>) {
        self.commits.inc();
        if let Some(p) = r.phases {
            self.total_secs.record_secs(p.total_secs());
            let secs = [
                p.index_secs,
                p.cleaning_secs,
                p.snapshot_secs,
                p.repair_secs,
                p.reweigh_secs,
                p.decision_secs,
            ];
            for (hist, s) in self.phase_hists.iter().zip(secs) {
                hist.record_secs(s);
            }
        }
        self.tiers[r.tier.min(2)].inc();
        let values = [
            r.dirty_nodes,
            r.patched_rows,
            r.patched_slots,
            r.edges_reweighed,
            r.edges_swept,
            r.edges_rekeyed,
            r.retention_flips,
            r.threshold_crossers,
            r.pairs_added,
            r.pairs_retracted,
            r.cleaner_dirty_keys,
            r.cleaner_removed_members,
            r.cleaner_touched_profiles,
            r.sharded_commits,
            r.frontier_pairs,
            r.cold_evictions,
            r.cold_rehydrations,
        ];
        for (c, v) in self.counters.iter().zip(values) {
            if v > 0 {
                c.add(v);
            }
        }
        let levels = [
            r.retained,
            r.blocks,
            r.live_edges,
            r.cached_accumulators,
            r.interned_symbols,
            r.shard_imbalance_permille,
            r.cold_resident_bytes,
        ];
        for (g, v) in self.gauges.iter().zip(levels) {
            g.set(v);
        }
    }
}

impl Default for CommitMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything the commit path recorded, read back out of a snapshot — the
/// typed aggregate view `blast stream --stats` prints and
/// `exp_incremental` serializes (apply to a
/// [`MetricsSnapshot::delta_since`] window to scope to one run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommitTotals {
    /// Commits in the window.
    pub commits: u64,
    /// Summed per-phase wall clock.
    pub phases: CommitPhases,
    /// Commits per repair-ladder rung (dirty / reweigh / full).
    pub tier_commits: [u64; 3],
    /// Dirty nodes repaired.
    pub dirty_nodes: u64,
    /// Snapshot CSR rows patched.
    pub patched_rows: u64,
    /// Snapshot block slots patched.
    pub patched_slots: u64,
    /// Edges re-accumulated from the blocks.
    pub edges_reweighed: u64,
    /// Clean edges swept by the reweigh tier.
    pub edges_swept: u64,
    /// Swept edges whose weight bits moved.
    pub edges_rekeyed: u64,
    /// Retention flips emitted.
    pub retention_flips: u64,
    /// Clean-edge frontier crossers.
    pub threshold_crossers: u64,
    /// Candidate pairs added.
    pub pairs_added: u64,
    /// Candidate pairs retracted.
    pub pairs_retracted: u64,
    /// Dirty posting keys drained by the cleaner.
    pub cleaner_dirty_keys: u64,
    /// Commits that ran under a multi-shard plan.
    pub sharded_commits: u64,
    /// Merge-frontier (cross-shard) pairs processed.
    pub frontier_pairs: u64,
    /// Rows demoted to the cold tier.
    pub cold_evictions: u64,
    /// Cold rows read back (transient decodes + promotions).
    pub cold_rehydrations: u64,
}

impl CommitTotals {
    /// Reconstructs the totals from a snapshot.
    pub fn from_snapshot(s: &MetricsSnapshot) -> CommitTotals {
        CommitTotals {
            commits: s.counter(names::COMMIT_COUNT),
            phases: CommitPhases::from_snapshot(s),
            tier_commits: [
                s.counter(names::REPAIR_TIER_DIRTY),
                s.counter(names::REPAIR_TIER_REWEIGH),
                s.counter(names::REPAIR_TIER_FULL),
            ],
            dirty_nodes: s.counter(names::REPAIR_DIRTY_NODES),
            patched_rows: s.counter(names::SNAPSHOT_PATCHED_ROWS),
            patched_slots: s.counter(names::SNAPSHOT_PATCHED_SLOTS),
            edges_reweighed: s.counter(names::REPAIR_EDGES_REWEIGHED),
            edges_swept: s.counter(names::REPAIR_EDGES_SWEPT),
            edges_rekeyed: s.counter(names::REPAIR_EDGES_REKEYED),
            retention_flips: s.counter(names::DECISION_RETENTION_FLIPS),
            threshold_crossers: s.counter(names::DECISION_THRESHOLD_CROSSERS),
            pairs_added: s.counter(names::COMMIT_PAIRS_ADDED),
            pairs_retracted: s.counter(names::COMMIT_PAIRS_RETRACTED),
            cleaner_dirty_keys: s.counter(names::CLEANER_DIRTY_KEYS),
            sharded_commits: s.counter(names::SHARD_COMMITS),
            frontier_pairs: s.counter(names::SHARD_FRONTIER_PAIRS),
            cold_evictions: s.counter(names::COLD_EVICTIONS),
            cold_rehydrations: s.counter(names::COLD_REHYDRATIONS),
        }
    }

    /// The repair-totals summary line of `blast stream --stats`.
    pub fn repair_summary(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "repair totals: {} dirty nodes, {} patched CSR rows, {} retention flips \
             ({} threshold crossers), tiers = {}/{}/{} dirty/reweigh/full of {}",
            self.dirty_nodes,
            self.patched_rows,
            self.retention_flips,
            self.threshold_crossers,
            self.tier_commits[0],
            self.tier_commits[1],
            self.tier_commits[2],
            self.commits,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_read_back_roundtrips() {
        let m = CommitMetrics::new();
        let phases = CommitPhases {
            index_secs: 1e-3,
            cleaning_secs: 2e-3,
            snapshot_secs: 3e-3,
            repair_secs: 4e-3,
            reweigh_secs: 5e-3,
            decision_secs: 6e-3,
        };
        m.record(&CommitRecord {
            phases: Some(&phases),
            tier: 1,
            dirty_nodes: 4,
            patched_rows: 7,
            retention_flips: 2,
            pairs_added: 2,
            retained: 11,
            live_edges: 30,
            sharded_commits: 1,
            frontier_pairs: 9,
            shard_imbalance_permille: 1250,
            cold_evictions: 5,
            cold_rehydrations: 3,
            cold_resident_bytes: 4096,
            ..CommitRecord::default()
        });
        m.record(&CommitRecord {
            phases: Some(&phases),
            tier: 0,
            dirty_nodes: 1,
            retained: 12,
            live_edges: 31,
            shard_imbalance_permille: 1000,
            ..CommitRecord::default()
        });
        let snap = m.snapshot();
        let t = CommitTotals::from_snapshot(&snap);
        assert_eq!(t.commits, 2);
        assert_eq!(t.tier_commits, [1, 1, 0]);
        assert_eq!(t.dirty_nodes, 5);
        assert_eq!(t.patched_rows, 7);
        assert_eq!(t.retention_flips, 2);
        assert_eq!(t.pairs_added, 2);
        assert!((t.phases.index_secs - 2e-3).abs() < 1e-9);
        assert!((t.phases.decision_secs - 12e-3).abs() < 1e-9);
        assert_eq!(t.sharded_commits, 1);
        assert_eq!(t.frontier_pairs, 9);
        assert_eq!(t.cold_evictions, 5);
        assert_eq!(t.cold_rehydrations, 3);
        assert_eq!(
            snap.gauge(names::COLD_RESIDENT_BYTES),
            Some(0),
            "last set wins"
        );
        assert_eq!(snap.gauge(names::PIPELINE_RETAINED), Some(12));
        assert_eq!(snap.gauge(names::PIPELINE_LIVE_EDGES), Some(31));
        assert_eq!(
            snap.gauge(names::SHARD_IMBALANCE),
            Some(1000),
            "last set wins"
        );
        assert!(t.repair_summary().contains("tiers = 1/1/0"));
    }

    #[test]
    fn bench_json_schema_is_stable() {
        let p = CommitPhases {
            index_secs: 0.5,
            ..CommitPhases::default()
        };
        let json = p.bench_json();
        for key in [
            "index_maintenance_secs",
            "cleaning_secs",
            "snapshot_patch_secs",
            "graph_repair_secs",
            "reweigh_secs",
            "decision_secs",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(crate::trace::is_valid_json(&json), "{json}");
    }

    #[test]
    fn phases_mean_and_accumulate() {
        let mut a = CommitPhases {
            index_secs: 1.0,
            decision_secs: 3.0,
            ..CommitPhases::default()
        };
        a.accumulate(&CommitPhases {
            index_secs: 1.0,
            decision_secs: 1.0,
            ..CommitPhases::default()
        });
        assert_eq!(a.total_secs(), 6.0);
        let m = a.mean(2);
        assert_eq!(m.index_secs, 1.0);
        assert_eq!(m.decision_secs, 2.0);
    }
}
