//! The `set_enabled(false)` kill switch, exercised in its own test binary
//! (one test function) so the global toggle cannot race the crate's
//! parallel unit tests.

use blast_obs::{set_enabled, CommitMetrics, CommitRecord, Registry};

#[test]
fn disabled_recording_is_dropped_and_reenabling_resumes() {
    let registry = Registry::new();
    let c = registry.counter("kill.counter");
    let g = registry.gauge("kill.gauge");
    let h = registry.histogram("kill.hist");
    c.add(2);
    g.set(5);
    h.record(10);

    set_enabled(false);
    c.add(100);
    g.set(-1);
    h.record(999);
    let off = registry.snapshot();

    // The typed commit view goes quiet too.
    let metrics = CommitMetrics::new();
    metrics.record(&CommitRecord {
        tier: 2,
        dirty_nodes: 40,
        retained: 123,
        ..CommitRecord::default()
    });
    let commit_snap = metrics.snapshot();
    set_enabled(true);

    // Nothing moved while disabled.
    assert_eq!(off.counter("kill.counter"), 2);
    assert_eq!(off.gauge("kill.gauge"), Some(5));
    assert_eq!(off.histogram("kill.hist").unwrap().count, 1);
    assert_eq!(commit_snap.counter("commit.count"), 0);
    assert_eq!(commit_snap.counter("repair.tier.full"), 0);
    assert_eq!(commit_snap.gauge("pipeline.retained"), Some(0));

    // Re-enabling resumes exactly where the totals left off.
    c.add(3);
    h.record(20);
    let on = registry.snapshot();
    assert_eq!(on.counter("kill.counter"), 5);
    assert_eq!(on.histogram("kill.hist").unwrap().count, 2);
    assert_eq!(on.histogram("kill.hist").unwrap().raw_sum, 30);
}
