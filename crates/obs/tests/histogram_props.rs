//! Property tests pinning the log-bucketed histogram against a
//! sorted-reference implementation, plus the concurrent shard-merge
//! exactness contract at the registry level.

use blast_obs::Registry;
use proptest::prelude::*;
use std::sync::Arc;

/// Nearest-rank reference quantile over the raw recorded values.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Records `values` into a fresh registry histogram and returns its sample.
fn sample_of(values: &[u64]) -> blast_obs::HistogramSample {
    let registry = Registry::new();
    let h = registry.histogram("test.hist");
    for &v in values {
        h.record(v);
    }
    let snap = registry.snapshot();
    snap.histogram("test.hist").expect("registered").clone()
}

proptest! {
    /// Every quantile's bucket must contain the nearest-rank reference
    /// value, and the midpoint estimate must sit within the bucket's
    /// guaranteed relative error (bucket width ≤ 25 % of its lower bound
    /// for values past the first octaves, so the midpoint is ≤ 12.5 % off).
    #[test]
    fn quantile_bucket_contains_reference(
        values in proptest::collection::vec(0u64..1 << 30, 1..200),
        qx in 0u32..=100,
    ) {
        let q = f64::from(qx) / 100.0;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let reference = reference_quantile(&sorted, q);

        let s = sample_of(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        let (lo, hi) = s.quantile_bucket_bounds(q).expect("in-range values");
        prop_assert!(
            (lo..=hi).contains(&reference),
            "reference {} outside bucket [{}, {}] at q={}",
            reference, lo, hi, q
        );
        let estimate = s.quantile(q).expect("non-empty");
        let width_bound = (reference as f64 / 8.0).max(2.0);
        prop_assert!(
            (estimate - reference as f64).abs() <= width_bound.max((hi - lo) as f64),
            "estimate {} vs reference {} (bucket [{}, {}])",
            estimate, reference, lo, hi
        );
    }

    /// All-equal recordings land in a single bucket: every quantile returns
    /// the same estimate, and its bucket contains the value.
    #[test]
    fn single_bucket_histogram_is_flat(v in 0u64..1 << 38, n in 1usize..64) {
        let s = sample_of(&vec![v; n]);
        let p50 = s.quantile(0.5).expect("non-empty");
        let p99 = s.quantile(0.99).expect("non-empty");
        prop_assert_eq!(p50, p99);
        let (lo, hi) = s.quantile_bucket_bounds(0.5).expect("finite");
        prop_assert!((lo..=hi).contains(&v));
        prop_assert_eq!(s.raw_sum, v.saturating_mul(n as u64));
    }

    /// Values at or past the trackable range land in the overflow bucket:
    /// the top quantile reports +Inf, never a fabricated finite estimate.
    #[test]
    fn overflow_values_report_infinite_quantiles(extra in 0u64..1 << 20) {
        let s = sample_of(&[1, 2, (1 << 40) + extra]);
        prop_assert_eq!(s.count, 3);
        let top = s.quantile(1.0).expect("non-empty");
        prop_assert!(top.is_infinite());
        prop_assert!(s.quantile_bucket_bounds(1.0).is_none());
        // The lower ranks stay finite.
        prop_assert!(s.quantile(0.34).expect("non-empty").is_finite());
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let s = sample_of(&[]);
    assert_eq!(s.count, 0);
    assert_eq!(s.quantile(0.5), None);
    assert_eq!(s.quantile_bucket_bounds(0.5), None);
    assert_eq!(s.mean(), None);
}

/// Concurrent recording from many threads must merge shards exactly: the
/// snapshot's count and raw sum equal the arithmetic totals, bucket counts
/// sum to the count, and no sample is lost or duplicated.
#[test]
fn concurrent_recording_merges_shards_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = Arc::new(Registry::new());
    let h = registry.histogram("test.concurrent");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = registry.snapshot();
    let s = snap.histogram("test.concurrent").expect("registered");
    let n = THREADS * PER_THREAD;
    assert_eq!(s.count, n);
    assert_eq!(s.raw_sum, n * (n - 1) / 2);
    assert_eq!(s.buckets.iter().sum::<u64>(), n);
}
