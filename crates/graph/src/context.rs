//! The implicit blocking graph.

use crate::traversal::NodeScratch;
use blast_blocking::collection::BlockCollection;
use blast_blocking::index::ProfileBlockIndex;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::hash::FastMap;
use blast_datamodel::parallel::default_threads;
use std::sync::Mutex;

/// Per-edge accumulator gathered while scanning a node's blocks: everything
/// any weighting scheme needs about the pair.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EdgeAccum {
    /// Number of shared blocks |B_ij| (CBS and the contingency n₁₁).
    pub common_blocks: u32,
    /// Σ over shared blocks of 1/‖b‖ (ARCS).
    pub arcs: f64,
    /// Σ over shared blocks of the block's entropy factor (BLAST's h(B_uv)
    /// numerator; 1 per block when no entropies are attached).
    pub entropy_sum: f64,
}

/// The blocking graph of a block collection, kept implicit: adjacency is
/// enumerated on demand from the profile→block index.
#[derive(Debug)]
pub struct GraphContext<'a> {
    blocks: &'a BlockCollection,
    index: ProfileBlockIndex,
    /// ‖b‖ per block, as f64 for the ARCS reciprocal.
    cardinalities: Vec<f64>,
    /// Optional per-block entropy factor (aggregate entropy of the block
    /// key's attribute cluster — attached by `blast-core`).
    entropies: Option<Vec<f64>>,
    /// Node degrees (distinct neighbours), computed by
    /// [`GraphContext::ensure_degrees`]; needed by EJS.
    degrees: Option<Vec<u32>>,
    /// Total number of edges, computed together with `degrees`.
    total_edges: Option<u64>,
    threads: usize,
    /// Scratch reused by the [`GraphContext::edge`] diagnostics helper, so
    /// repeated calls don't re-allocate a profile-sized array each time.
    diag_scratch: Mutex<Option<NodeScratch>>,
}

impl<'a> GraphContext<'a> {
    /// Builds the context (CSR index + block cardinalities).
    pub fn new(blocks: &'a BlockCollection) -> Self {
        let index = ProfileBlockIndex::build(blocks);
        let clean = blocks.is_clean_clean();
        let cardinalities = blocks
            .blocks()
            .iter()
            .map(|b| b.cardinality(clean) as f64)
            .collect();
        // Graph passes do quadratic-ish work per node; the block-assignment
        // count is a far better workload proxy than the profile count.
        let threads = default_threads(index.total_assignments() as usize);
        Self {
            blocks,
            index,
            cardinalities,
            entropies: None,
            degrees: None,
            total_edges: None,
            threads,
            diag_scratch: Mutex::new(None),
        }
    }

    /// Attaches a per-block entropy factor (one value per block, aligned
    /// with `blocks.blocks()`).
    pub fn with_block_entropies(mut self, entropies: Vec<f64>) -> Self {
        assert_eq!(
            entropies.len(),
            self.blocks.len(),
            "one entropy per block required"
        );
        self.entropies = Some(entropies);
        self
    }

    /// Overrides the number of worker threads (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The underlying block collection.
    #[inline]
    pub fn blocks(&self) -> &BlockCollection {
        self.blocks
    }

    /// The profile→block index.
    #[inline]
    pub fn index(&self) -> &ProfileBlockIndex {
        &self.index
    }

    /// Number of worker threads used by graph passes.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total number of blocks |B|.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Total number of profiles (nodes, including isolated ones).
    #[inline]
    pub fn total_profiles(&self) -> u32 {
        self.blocks.total_profiles()
    }

    /// |Bᵢ|: number of blocks containing node `p`.
    #[inline]
    pub fn node_blocks(&self, p: u32) -> u32 {
        self.index.block_count(p)
    }

    /// Node degree (requires [`GraphContext::ensure_degrees`]).
    #[inline]
    pub fn degree(&self, p: u32) -> u32 {
        self.degrees.as_ref().expect("call ensure_degrees() first")[p as usize]
    }

    /// Total edge count (requires [`GraphContext::ensure_degrees`]).
    #[inline]
    pub fn total_edges(&self) -> u64 {
        self.total_edges.expect("call ensure_degrees() first")
    }

    /// Whether degrees are available.
    #[inline]
    pub fn has_degrees(&self) -> bool {
        self.degrees.is_some()
    }

    /// The nodes that *own* edge enumeration: for clean-clean graphs every
    /// edge has exactly one endpoint in the first collection, so enumerating
    /// from `0..separator` visits each edge once; dirty graphs enumerate all
    /// nodes and keep `v > u`.
    pub fn edge_owner_range(&self) -> std::ops::Range<u32> {
        if self.blocks.is_clean_clean() {
            0..self.blocks.separator()
        } else {
            0..self.total_profiles()
        }
    }

    /// ‖b‖ per block as f64 (for the ARCS reciprocal).
    #[inline]
    pub(crate) fn cardinalities(&self) -> &[f64] {
        &self.cardinalities
    }

    /// The per-block entropy factors, if attached.
    #[inline]
    pub(crate) fn entropies_opt(&self) -> Option<&[f64]> {
        self.entropies.as_deref()
    }

    /// Accumulates the adjacency of `node` into `map` (cleared first):
    /// neighbour id → [`EdgeAccum`].
    ///
    /// This is the **naive hashmap reference path**, kept for validation:
    /// the hot engine is [`crate::traversal::NodeScratch`], whose dense
    /// scratch array must stay bit-identical to this accumulation (the
    /// property tests in [`crate::traversal`] compare the two).
    pub fn accumulate_neighbors(&self, node: u32, map: &mut FastMap<u32, EdgeAccum>) {
        map.clear();
        let clean = self.blocks.is_clean_clean();
        let sep = self.blocks.separator();
        for &bid in self.index.blocks_of(node) {
            let block = &self.blocks.blocks()[bid as usize];
            let inv = 1.0 / self.cardinalities[bid as usize];
            let ent = self.entropies.as_ref().map_or(1.0, |e| e[bid as usize]);
            let neighbours: &[ProfileId] = if clean {
                if node < sep {
                    block.inner2()
                } else {
                    block.inner1()
                }
            } else {
                &block.profiles
            };
            for &p in neighbours {
                if p.0 == node {
                    continue;
                }
                let e = map.entry(p.0).or_default();
                e.common_blocks += 1;
                e.arcs += inv;
                e.entropy_sum += ent;
            }
        }
    }

    /// Computes node degrees and the total edge count (one full adjacency
    /// pass on the dense scratch engine, work-stealing parallelised). EJS
    /// runs this as its only extra pass — the same
    /// [`crate::traversal::NodeScratch`] machinery every other pass uses,
    /// not a separate hashmap re-scan.
    pub fn ensure_degrees(&mut self) {
        if self.degrees.is_some() {
            return;
        }
        let (degrees, total_edges) = crate::traversal::degrees_pass(self);
        self.total_edges = Some(total_edges);
        self.degrees = Some(degrees);
    }

    /// Convenience (tests/diagnostics): the accumulator of one edge, if it
    /// exists. Runs on the dense scratch engine; the scratch is cached so
    /// repeated probes don't re-allocate.
    pub fn edge(&self, u: u32, v: u32) -> Option<EdgeAccum> {
        let mut slot = self.diag_scratch.lock().expect("diag scratch poisoned");
        let scratch = slot.get_or_insert_with(|| NodeScratch::new(self));
        scratch.load(self, u);
        scratch.get(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::key::ClusterId;
    use blast_blocking::token_blocking::TokenBlocking;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use blast_datamodel::input::ErInput;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// The Figure 1a profiles (dirty input).
    fn figure1_blocks() -> BlockCollection {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs(
            "p1",
            [
                ("Name", "John Abram Jr"),
                ("profession", "car seller"),
                ("year", "1985"),
                ("Addr.", "Main street"),
            ],
        );
        d.push_pairs(
            "p2",
            [
                ("FirstName", "Ellen"),
                ("SecondName", "Smith"),
                ("year", "85"),
                ("occupation", "retail"),
                ("mail", "Abram st. 30 NY"),
            ],
        );
        d.push_pairs(
            "p3",
            [
                ("name1", "Jon Jr"),
                ("name2", "Abram"),
                ("birth year", "85"),
                ("job", "car retail"),
                ("Loc", "Main st."),
            ],
        );
        d.push_pairs(
            "p4",
            [
                ("full name", "Ellen Smith"),
                ("b. date", "May 10 1985"),
                ("work info", "retailer"),
                ("loc", "Abram street NY"),
            ],
        );
        TokenBlocking::new().build(&ErInput::dirty(d))
    }

    /// Table 1's example values: for (p1, p3) in the Figure 1b collection,
    /// n₁₁ = 4 shared blocks, |B₁| = 6, |B₃| = 7, |B| = 12.
    #[test]
    fn figure1_contingency_counts() {
        let blocks = figure1_blocks();
        let ctx = GraphContext::new(&blocks);
        assert_eq!(ctx.total_blocks(), 12);
        let acc = ctx.edge(0, 2).expect("p1–p3 edge exists");
        assert_eq!(acc.common_blocks, 4); // car, main, abram, jr
        assert_eq!(ctx.node_blocks(0), 6); // 1985 car main abram street jr
        assert_eq!(ctx.node_blocks(2), 7); // car main abram jr 85 st retail
    }

    /// Figure 1c: the blocking graph over the Figure 1b blocks, with
    /// co-occurrence counts as weights.
    #[test]
    fn figure1_graph_weights() {
        let blocks = figure1_blocks();
        let ctx = GraphContext::new(&blocks);
        assert_eq!(ctx.edge(0, 2).unwrap().common_blocks, 4); // p1-p3: car, main, abram, jr
        assert_eq!(ctx.edge(1, 3).unwrap().common_blocks, 4); // p2-p4: ellen, smith, ny, abram
        assert_eq!(ctx.edge(1, 2).unwrap().common_blocks, 4); // p2-p3: abram, 85, st, retail
        assert_eq!(ctx.edge(0, 3).unwrap().common_blocks, 3); // p1-p4: 1985, abram, street
        assert_eq!(ctx.edge(0, 1).unwrap().common_blocks, 1); // p1-p2: abram
        assert_eq!(ctx.edge(2, 3).unwrap().common_blocks, 1); // p3-p4: abram
    }

    #[test]
    fn degrees_and_edge_count() {
        let blocks = figure1_blocks();
        let mut ctx = GraphContext::new(&blocks);
        ctx.ensure_degrees();
        // Figure 1c is a complete graph over 4 nodes: 6 edges, degree 3.
        assert_eq!(ctx.total_edges(), 6);
        for p in 0..4 {
            assert_eq!(ctx.degree(p), 3);
        }
    }

    #[test]
    fn clean_clean_adjacency_is_bipartite() {
        let b = vec![
            Block::new("k1", ClusterId::GLUE, ids(&[0, 1, 2, 3]), 2),
            Block::new("k2", ClusterId::GLUE, ids(&[0, 2]), 2),
        ];
        let blocks = BlockCollection::new(b, true, 2, 4);
        let ctx = GraphContext::new(&blocks);
        let mut map = FastMap::default();
        ctx.accumulate_neighbors(0, &mut map);
        // Node 0 (E1) only sees nodes 2, 3 (E2) — never node 1.
        let mut neigh: Vec<u32> = map.keys().copied().collect();
        neigh.sort_unstable();
        assert_eq!(neigh, vec![2, 3]);
        assert_eq!(map[&2].common_blocks, 2);
        assert_eq!(map[&3].common_blocks, 1);
    }

    #[test]
    fn arcs_accumulates_reciprocal_cardinalities() {
        let b = vec![
            // ‖b‖ = 2·1 = 2 and ‖b‖ = 1·1 = 1.
            Block::new("k1", ClusterId::GLUE, ids(&[0, 1, 2]), 2),
            Block::new("k2", ClusterId::GLUE, ids(&[0, 2]), 2),
        ];
        let blocks = BlockCollection::new(b, true, 2, 3);
        let ctx = GraphContext::new(&blocks);
        let acc = ctx.edge(0, 2).unwrap();
        assert!((acc.arcs - (0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn entropies_flow_into_accumulator() {
        let b = vec![
            Block::new("k1", ClusterId::GLUE, ids(&[0, 1]), 1),
            Block::new("k2", ClusterId::GLUE, ids(&[0, 1]), 1),
        ];
        let blocks = BlockCollection::new(b, true, 1, 2);
        let ctx = GraphContext::new(&blocks).with_block_entropies(vec![3.5, 2.0]);
        let acc = ctx.edge(0, 1).unwrap();
        assert_eq!(acc.common_blocks, 2);
        assert!((acc.entropy_sum - 5.5).abs() < 1e-12);
        // Without entropies the factor defaults to 1 per block.
        let ctx = GraphContext::new(&blocks);
        assert!((ctx.edge(0, 1).unwrap().entropy_sum - 2.0).abs() < 1e-12);
    }
}
