//! The implicit blocking graph, as an **owned, versioned, delta-maintained
//! snapshot**.
//!
//! [`GraphSnapshot`] holds everything a graph pass reads — the CSR
//! profile→block rows, per-block membership, cardinality and entropy, the
//! live block count and (lazily) node degrees — in *stable block slots*:
//! a slot keeps its id for the lifetime of the snapshot even as blocks
//! around it appear and disappear, so an incremental delta can patch the
//! dirty slots and rows in place ([`GraphSnapshot::apply`]) instead of
//! rebuilding the index per commit. Batch pipelines build a snapshot once
//! from a cleaned [`BlockCollection`] ([`GraphSnapshot::build`], slot i =
//! block i); the incremental pipeline starts from
//! [`GraphSnapshot::empty`] and applies one [`SnapshotDelta`] per commit.
//!
//! The two construction paths are field-for-field equivalent: a snapshot
//! patched through any mutation history exposes the same rows (same block
//! sequence per profile, in canonical `(cluster, token)` order), the same
//! cardinalities/entropies and the same aggregate statistics as
//! `GraphSnapshot::build` on the materialised collection — which is what
//! keeps incremental repair bit-identical to batch (pinned by
//! `tests/snapshot_maintenance.rs`).

use crate::traversal::with_diag_scratch;
use blast_blocking::collection::BlockCollection;
use blast_blocking::index::ProfileBlockIndex;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::hash::FastMap;
use blast_datamodel::parallel::default_threads;

/// Per-edge accumulator gathered while scanning a node's blocks: everything
/// any weighting scheme needs about the pair.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EdgeAccum {
    /// Number of shared blocks |B_ij| (CBS and the contingency n₁₁).
    pub common_blocks: u32,
    /// Σ over shared blocks of 1/‖b‖ (ARCS).
    pub arcs: f64,
    /// Σ over shared blocks of the block's entropy factor (BLAST's h(B_uv)
    /// numerator; 1 per block when no entropies are attached).
    pub entropy_sum: f64,
}

/// One patched block slot of a [`SnapshotDelta`]: the slot's new cleaned
/// membership (sorted; empty = the slot no longer emits a block) and its
/// entropy factor (ignored unless the snapshot carries entropies).
#[derive(Debug, Clone)]
pub struct SlotPatch {
    /// The stable slot id.
    pub slot: u32,
    /// New sorted membership; empty tombstones the slot.
    pub members: Vec<ProfileId>,
    /// The block's entropy factor (its attribute cluster's aggregate
    /// entropy; 1.0 for schema-agnostic pipelines).
    pub entropy: f64,
}

/// One patched CSR row of a [`SnapshotDelta`]: a profile's new block-slot
/// list, already in the canonical block order the batch index would use.
#[derive(Debug, Clone)]
pub struct RowPatch {
    /// The profile whose row changed.
    pub profile: u32,
    /// The live slots containing the profile, canonically ordered.
    pub slots: Vec<u32>,
}

/// What one commit changed about the graph: produced by the incremental
/// cleaner, consumed by [`GraphSnapshot::apply`].
#[derive(Debug, Clone, Default)]
pub struct SnapshotDelta {
    /// The profile-id space after the commit (monotonically grows).
    pub total_profiles: u32,
    /// Block slots whose cleaned membership (or liveness) changed.
    pub slots: Vec<SlotPatch>,
    /// Profiles whose block list changed.
    pub rows: Vec<RowPatch>,
}

impl SnapshotDelta {
    /// Whether the delta patches nothing (the profile-id space may still
    /// grow).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && self.rows.is_empty()
    }
}

/// Diagnostics of one [`GraphSnapshot::apply`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApplyStats {
    /// Block slots patched (membership or liveness changed).
    pub patched_slots: usize,
    /// CSR rows spliced.
    pub patched_rows: usize,
}

/// The owned blocking-graph snapshot (see the module docs).
#[derive(Debug)]
pub struct GraphSnapshot {
    clean_clean: bool,
    separator: u32,
    total_profiles: u32,
    /// Per-slot cleaned membership (sorted global ids; empty = dead slot).
    members: Vec<Vec<ProfileId>>,
    /// Per-slot split point (first member of the second collection).
    splits: Vec<u32>,
    /// ‖b‖ per slot, as f64 for the ARCS reciprocal.
    cardinalities: Vec<f64>,
    /// Optional per-slot entropy factor (aggregate entropy of the block
    /// key's attribute cluster — attached by `blast-core`).
    entropies: Option<Vec<f64>>,
    /// Number of live slots (|B|, the batch collection's block count).
    live_blocks: u64,
    /// Mutable CSR: profile → live slots, in canonical block order.
    index: ProfileBlockIndex,
    /// Node degrees (distinct neighbours), computed by
    /// [`GraphSnapshot::ensure_degrees`]; needed by EJS. Invalidated by
    /// [`GraphSnapshot::apply`] unless degree maintenance is on
    /// ([`GraphSnapshot::begin_degree_maintenance`]), in which case the
    /// maintainer patches them through
    /// [`GraphSnapshot::apply_degree_deltas`].
    degrees: Option<Vec<u32>>,
    /// Total number of edges, computed together with `degrees`.
    total_edges: Option<u64>,
    /// Whether degrees are delta-maintained across [`GraphSnapshot::apply`]
    /// (the incremental pipeline's EJS path) instead of invalidated.
    maintain_degrees: bool,
    threads: usize,
    threads_override: Option<usize>,
    /// Bumped on every applied delta.
    version: u64,
    /// Two-tier slot residency (bounded-memory streaming); `None` until a
    /// pipeline enables a memory budget.
    residency: Option<Box<SlotResidency>>,
}

/// Cold-tier state of the snapshot's block memberships: per-slot frame
/// handles, last-touch epochs, and the backing [`ColdStore`].
///
/// Demotion is writer-driven and so is rehydration: repair passes read
/// memberships through `&self` from many workers at once, so a cold slot
/// is **never** lazily rehydrated on read — the incremental blocker
/// prefetches every slot its dirty neighbourhood can reach before the
/// pass starts ([`GraphSnapshot::ensure_node_slots_resident`]), and a
/// read that still lands on a cold slot is a bug surfaced by
/// [`SlotResidency::assert_hot`]'s panic, not silent divergence.
#[derive(Debug)]
struct SlotResidency {
    store: crate::cold::ColdStore,
    /// `Some(frame)` = the slot's membership lives in the cold store and
    /// `members[slot]` is an empty placeholder.
    cold: Vec<Option<crate::cold::FrameRef>>,
    /// Per-slot last-touch epoch (bumped once per `enforce`).
    touch: Vec<u32>,
    epoch: u32,
}

impl SlotResidency {
    #[inline]
    fn is_cold(&self, slot: usize) -> bool {
        self.cold.get(slot).is_some_and(Option::is_some)
    }

    #[inline]
    fn assert_hot(&self, slot: u32) {
        assert!(
            !self.is_cold(slot as usize),
            "cold snapshot slot {slot} read without rehydration — a repair \
             pass touched a slot outside its prefetched dirty neighbourhood"
        );
    }

    fn grow(&mut self, slots: usize) {
        if self.cold.len() < slots {
            self.cold.resize(slots, None);
            self.touch.resize(slots, self.epoch);
        }
    }
}

impl GraphSnapshot {
    /// Builds a snapshot of a cleaned block collection (slot i = block i;
    /// the batch construction path).
    pub fn build(blocks: &BlockCollection) -> Self {
        let clean = blocks.is_clean_clean();
        let index = ProfileBlockIndex::build(blocks);
        let mut members = Vec::with_capacity(blocks.len());
        let mut splits = Vec::with_capacity(blocks.len());
        let mut cardinalities = Vec::with_capacity(blocks.len());
        for b in blocks.blocks() {
            members.push(b.profiles.clone());
            splits.push(b.split);
            cardinalities.push(b.cardinality(clean) as f64);
        }
        // Graph passes do quadratic-ish work per node; the block-assignment
        // count is a far better workload proxy than the profile count.
        let threads = default_threads(index.total_assignments() as usize);
        Self {
            clean_clean: clean,
            separator: blocks.separator(),
            total_profiles: blocks.total_profiles(),
            members,
            splits,
            cardinalities,
            entropies: None,
            live_blocks: blocks.len() as u64,
            index,
            degrees: None,
            total_edges: None,
            maintain_degrees: false,
            threads,
            threads_override: None,
            version: 0,
            residency: None,
        }
    }

    /// An empty snapshot for an incremental pipeline: no blocks, no rows;
    /// state arrives through [`GraphSnapshot::apply`]. Clean-clean snapshots
    /// fix the dataset separator up front (ids `0..separator` belong to the
    /// first collection).
    pub fn empty(clean_clean: bool, separator: u32) -> Self {
        let total_profiles = if clean_clean { separator } else { 0 };
        let mut index = ProfileBlockIndex::new();
        index.ensure_profiles(total_profiles as usize);
        Self {
            clean_clean,
            separator: if clean_clean { separator } else { u32::MAX },
            total_profiles,
            members: Vec::new(),
            splits: Vec::new(),
            cardinalities: Vec::new(),
            entropies: None,
            live_blocks: 0,
            index,
            degrees: None,
            total_edges: None,
            maintain_degrees: false,
            threads: 1,
            threads_override: None,
            version: 0,
            residency: None,
        }
    }

    /// Attaches a per-block entropy factor (one value per slot, aligned with
    /// the collection the snapshot was built from).
    pub fn with_block_entropies(mut self, entropies: Vec<f64>) -> Self {
        assert_eq!(
            entropies.len(),
            self.members.len(),
            "one entropy per block required"
        );
        self.entropies = Some(entropies);
        self
    }

    /// Enables per-block entropies on an (empty) incremental snapshot: every
    /// subsequent [`SlotPatch`]'s `entropy` field is recorded instead of
    /// defaulting to 1.
    pub fn with_entropies_enabled(mut self) -> Self {
        self.entropies = Some(vec![1.0; self.members.len()]);
        self
    }

    /// Overrides the number of worker threads (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// In-place worker-thread override — the mutable counterpart of
    /// [`GraphSnapshot::with_threads`] for snapshots already owned by a
    /// pipeline (`blast stream --threads`). Survives every subsequent
    /// [`GraphSnapshot::apply`].
    pub fn set_threads(&mut self, threads: usize) {
        self.threads_override = Some(threads.max(1));
        self.threads = threads.max(1);
    }

    /// Patches the snapshot in place from a commit's delta (consumed —
    /// slot memberships are moved in, not copied): dirty block slots get
    /// their new membership, cardinality and entropy; dirty CSR rows are
    /// spliced; aggregate statistics (|B|, Σ|b|, the profile-id space) are
    /// adjusted incrementally. Degrees are invalidated (EJS recomputes
    /// them), the version is bumped, and the cost is proportional to the
    /// delta — the collection size never enters.
    pub fn apply(&mut self, delta: SnapshotDelta) -> ApplyStats {
        let stats = ApplyStats {
            patched_slots: delta.slots.len(),
            patched_rows: delta.rows.len(),
        };
        if delta.total_profiles > self.total_profiles {
            self.total_profiles = delta.total_profiles;
        }
        self.index.ensure_profiles(self.total_profiles as usize);
        for patch in delta.slots {
            let slot = patch.slot as usize;
            if self.members.len() <= slot {
                self.members.resize_with(slot + 1, Vec::new);
                self.splits.resize(slot + 1, 0);
                self.cardinalities.resize(slot + 1, 0.0);
                if let Some(e) = &mut self.entropies {
                    e.resize(slot + 1, 1.0);
                }
            }
            let was_live = match &mut self.residency {
                Some(r) if r.is_cold(slot) => {
                    // Only live (non-empty) slots are ever demoted, and
                    // the old membership is about to be overwritten, so
                    // drop the frame without decoding it.
                    let frame = r.cold[slot].take().expect("cold slot has a frame");
                    r.store.free(frame);
                    true
                }
                _ => !self.members[slot].is_empty(),
            };
            let split = patch.members.partition_point(|p| p.0 < self.separator) as u32;
            let card = if self.clean_clean {
                split as u64 * (patch.members.len() as u64 - split as u64)
            } else {
                let n = patch.members.len() as u64;
                n * n.saturating_sub(1) / 2
            };
            self.members[slot] = patch.members;
            self.splits[slot] = split;
            self.cardinalities[slot] = card as f64;
            if let Some(e) = &mut self.entropies {
                e[slot] = patch.entropy;
            }
            let is_live = !self.members[slot].is_empty();
            match (was_live, is_live) {
                (false, true) => self.live_blocks += 1,
                (true, false) => self.live_blocks -= 1,
                _ => {}
            }
            if let Some(r) = &mut self.residency {
                r.grow(self.members.len());
                r.touch[slot] = r.epoch;
            }
        }
        for row in &delta.rows {
            self.index.splice_row(row.profile, &row.slots);
        }
        if self.maintain_degrees {
            // The maintainer patches degrees through `apply_degree_deltas`
            // before anything reads them; new profiles start isolated.
            if let Some(d) = &mut self.degrees {
                d.resize(self.total_profiles as usize, 0);
            }
        } else {
            self.degrees = None;
            self.total_edges = None;
        }
        self.threads = self
            .threads_override
            .unwrap_or_else(|| default_threads(self.index.total_assignments() as usize));
        self.version += 1;
        stats
    }

    /// Whether the snapshot covers a clean-clean input.
    #[inline]
    pub fn is_clean_clean(&self) -> bool {
        self.clean_clean
    }

    /// The global id where the second collection starts (clean-clean).
    #[inline]
    pub fn separator(&self) -> u32 {
        self.separator
    }

    /// The profile→block CSR rows.
    #[inline]
    pub fn index(&self) -> &ProfileBlockIndex {
        &self.index
    }

    /// Number of worker threads used by graph passes.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The snapshot's CSR slice sizes under round-robin profile ownership
    /// (see [`ProfileBlockIndex::shard_assignment_counts`]): how much of
    /// the blocking state each shard of the sharded commit path owns.
    pub fn shard_loads(&self, shards: usize) -> Vec<u64> {
        self.index.shard_assignment_counts(shards)
    }

    /// How many deltas have been applied.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Estimated resident heap footprint in bytes: slot memberships, slot
    /// statistics, the CSR index, and the optional per-node arrays
    /// (capacities, not lengths).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.members
            .iter()
            .map(|m| m.capacity() * size_of::<ProfileId>())
            .sum::<usize>()
            + self.members.len() * size_of::<Vec<ProfileId>>()
            + self.splits.capacity() * size_of::<u32>()
            + self.cardinalities.capacity() * size_of::<f64>()
            + self
                .entropies
                .as_ref()
                .map_or(0, |e| e.capacity() * size_of::<f64>())
            + self
                .degrees
                .as_ref()
                .map_or(0, |d| d.capacity() * size_of::<u32>())
            + self.index.resident_bytes()
            + self.residency.as_ref().map_or(0, |r| {
                r.cold.capacity() * size_of::<Option<crate::cold::FrameRef>>()
                    + r.touch.capacity() * size_of::<u32>()
            })
    }

    /// Enables two-tier slot residency: cold memberships demote into a
    /// [`crate::cold::ColdStore`] (spilled to `spill` when given) on
    /// [`GraphSnapshot::enforce_slot_residency`] rounds. Idempotent.
    pub fn enable_slot_residency(&mut self, spill: Option<Box<dyn crate::cold::SpillBackend>>) {
        if self.residency.is_none() {
            let store = match spill {
                Some(backend) => crate::cold::ColdStore::spilled(backend),
                None => crate::cold::ColdStore::in_memory(),
            };
            self.residency = Some(Box::new(SlotResidency {
                store,
                cold: Vec::new(),
                touch: Vec::new(),
                epoch: 0,
            }));
        }
    }

    /// Whether slot residency has been enabled.
    pub fn slot_residency_enabled(&self) -> bool {
        self.residency.is_some()
    }

    /// Cold-tier telemetry of the slot store (zeros when disabled).
    pub fn slot_cold_stats(&self) -> crate::cold::ColdStats {
        self.residency
            .as_ref()
            .map_or_else(Default::default, |r| r.store.stats())
    }

    /// Hot membership bytes eligible for demotion (0 when residency is
    /// disabled — nothing is evictable then).
    pub fn evictable_hot_bytes(&self) -> usize {
        if self.residency.is_none() {
            return 0;
        }
        self.members
            .iter()
            .map(|m| m.len() * std::mem::size_of::<ProfileId>())
            .sum()
    }

    /// Rehydrates one slot if cold, and stamps its touch epoch.
    fn rehydrate_slot(&mut self, slot: usize) {
        let Some(r) = &mut self.residency else {
            return;
        };
        r.grow(self.members.len());
        if !r.is_cold(slot) {
            r.touch[slot] = r.epoch;
            return;
        }
        let frame = r.cold[slot].take().expect("cold slot has a frame");
        let payload = r
            .store
            .get(frame)
            .unwrap_or_else(|e| panic!("cold tier: snapshot slot {slot} unreadable: {e}"));
        r.store.free(frame);
        let mut ids: Vec<u32> = Vec::new();
        let mut pos = 0;
        crate::cold::decode_u32s(&payload, &mut pos, &mut ids);
        debug_assert_eq!(pos, payload.len(), "slot frame fully consumed");
        self.members[slot] = ids.into_iter().map(ProfileId).collect();
        r.touch[slot] = r.epoch;
    }

    /// Writer-side prefetch: rehydrates the given slots before a repair
    /// pass reads them through `&self`.
    pub fn ensure_slots_resident<I: IntoIterator<Item = u32>>(&mut self, slots: I) {
        if self.residency.is_none() {
            return;
        }
        for s in slots {
            let s = s as usize;
            if s < self.members.len() {
                self.rehydrate_slot(s);
            }
        }
    }

    /// Writer-side prefetch by node: rehydrates every slot on the given
    /// nodes' CSR rows (the slots a dirty-neighbourhood pass can reach).
    pub fn ensure_node_slots_resident<'a, I: IntoIterator<Item = &'a u32>>(&mut self, nodes: I) {
        if self.residency.is_none() {
            return;
        }
        let mut slots: Vec<u32> = Vec::new();
        for &u in nodes {
            slots.extend_from_slice(self.index.blocks_of(u));
        }
        slots.sort_unstable();
        slots.dedup();
        self.ensure_slots_resident(slots);
    }

    /// Rehydrates every cold slot (structural passes read the full graph).
    pub fn ensure_all_slots_resident(&mut self) {
        if self.residency.is_none() {
            return;
        }
        for s in 0..self.members.len() {
            self.rehydrate_slot(s);
        }
    }

    /// One residency maintenance round (writer-side, once per commit):
    /// demotes live memberships untouched for more than `idle` rounds,
    /// then — while the remaining hot bytes exceed `target_hot_bytes` —
    /// keeps demoting coldest-first. Deterministic: candidates are
    /// ordered by `(last_touch, slot)`. `idle == 0` with a zero target
    /// demotes everything every commit (the stress cadence).
    pub fn enforce_slot_residency(&mut self, idle: u32, target_hot_bytes: usize) {
        let Some(r) = &mut self.residency else {
            return;
        };
        r.grow(self.members.len());
        r.epoch += 1;
        let mut hot_bytes = 0usize;
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for (slot, m) in self.members.iter().enumerate() {
            if m.is_empty() || r.is_cold(slot) {
                continue;
            }
            hot_bytes += m.len() * std::mem::size_of::<ProfileId>();
            candidates.push((r.touch[slot], slot as u32));
        }
        candidates.sort_unstable();
        let mut frame_buf = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        for (touch, slot) in candidates {
            let stale = u64::from(touch) + u64::from(idle) < u64::from(r.epoch);
            if !stale && hot_bytes <= target_hot_bytes {
                break;
            }
            let m = std::mem::take(&mut self.members[slot as usize]);
            hot_bytes -= m.len() * std::mem::size_of::<ProfileId>();
            ids.clear();
            ids.extend(m.iter().map(|p| p.0));
            frame_buf.clear();
            crate::cold::encode_u32s(&ids, &mut frame_buf);
            r.cold[slot as usize] = Some(r.store.put(&frame_buf));
        }
        if r.store.wants_compaction() {
            let refs: Vec<&mut crate::cold::FrameRef> =
                r.cold.iter_mut().filter_map(|c| c.as_mut()).collect();
            r.store.compact(refs);
        }
    }

    /// Total number of (live) blocks |B|.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.live_blocks
    }

    /// Total number of profiles (nodes, including isolated ones).
    #[inline]
    pub fn total_profiles(&self) -> u32 {
        self.total_profiles
    }

    /// |Bᵢ|: number of blocks containing node `p`.
    #[inline]
    pub fn node_blocks(&self, p: u32) -> u32 {
        self.index.block_count(p)
    }

    /// Node degree (requires [`GraphSnapshot::ensure_degrees`]).
    #[inline]
    pub fn degree(&self, p: u32) -> u32 {
        self.degrees.as_ref().expect("call ensure_degrees() first")[p as usize]
    }

    /// Total edge count (requires [`GraphSnapshot::ensure_degrees`]).
    #[inline]
    pub fn total_edges(&self) -> u64 {
        self.total_edges.expect("call ensure_degrees() first")
    }

    /// Whether degrees are available.
    #[inline]
    pub fn has_degrees(&self) -> bool {
        self.degrees.is_some()
    }

    /// The cleaned membership of one block slot (empty for dead slots).
    #[inline]
    pub fn slot_members(&self, slot: u32) -> &[ProfileId] {
        if let Some(r) = &self.residency {
            r.assert_hot(slot);
        }
        &self.members[slot as usize]
    }

    /// ‖b‖ of one block slot (0 for dead slots).
    #[inline]
    pub fn slot_cardinality(&self, slot: u32) -> f64 {
        self.cardinalities[slot as usize]
    }

    /// The entropy factor of one block slot (1.0 when entropies are not
    /// attached).
    #[inline]
    pub fn slot_entropy(&self, slot: u32) -> f64 {
        self.entropies.as_ref().map_or(1.0, |e| e[slot as usize])
    }

    /// The co-occurring profiles `node` sees in `slot`: the opposite side
    /// for clean-clean snapshots, the whole membership (minus the node
    /// itself, filtered by the caller) for dirty ones.
    #[inline]
    pub fn slot_neighbours(&self, slot: u32, node: u32) -> &[ProfileId] {
        if let Some(r) = &self.residency {
            r.assert_hot(slot);
        }
        let members = &self.members[slot as usize];
        if self.clean_clean {
            let split = self.splits[slot as usize] as usize;
            if node < self.separator {
                &members[split..]
            } else {
                &members[..split]
            }
        } else {
            members
        }
    }

    /// The nodes that *own* edge enumeration: for clean-clean graphs every
    /// edge has exactly one endpoint in the first collection, so enumerating
    /// from `0..separator` visits each edge once; dirty graphs enumerate all
    /// nodes and keep `v > u`.
    pub fn edge_owner_range(&self) -> std::ops::Range<u32> {
        if self.clean_clean {
            0..self.separator
        } else {
            0..self.total_profiles
        }
    }

    /// ‖b‖ per slot as f64 (for the ARCS reciprocal).
    #[inline]
    pub(crate) fn cardinalities(&self) -> &[f64] {
        &self.cardinalities
    }

    /// The per-slot entropy factors, if attached.
    #[inline]
    pub(crate) fn entropies_opt(&self) -> Option<&[f64]> {
        self.entropies.as_deref()
    }

    /// Accumulates the adjacency of `node` into `map` (cleared first):
    /// neighbour id → [`EdgeAccum`].
    ///
    /// This is the **naive hashmap reference path**, kept for validation:
    /// the hot engine is [`crate::traversal::NodeScratch`], whose dense
    /// scratch array must stay bit-identical to this accumulation (the
    /// property tests in [`crate::traversal`] compare the two).
    pub fn accumulate_neighbors(&self, node: u32, map: &mut FastMap<u32, EdgeAccum>) {
        map.clear();
        for &slot in self.index.blocks_of(node) {
            let inv = 1.0 / self.cardinalities[slot as usize];
            let ent = self.entropies.as_ref().map_or(1.0, |e| e[slot as usize]);
            for &p in self.slot_neighbours(slot, node) {
                if p.0 == node {
                    continue;
                }
                let e = map.entry(p.0).or_default();
                e.common_blocks += 1;
                e.arcs += inv;
                e.entropy_sum += ent;
            }
        }
    }

    /// Computes node degrees and the total edge count (one full adjacency
    /// pass on the dense scratch engine, work-stealing parallelised). EJS
    /// runs this as its only extra pass — the same
    /// [`crate::traversal::NodeScratch`] machinery every other pass uses,
    /// not a separate hashmap re-scan.
    pub fn ensure_degrees(&mut self) {
        self.ensure_all_slots_resident();
        if self.degrees.is_some() {
            return;
        }
        let (degrees, total_edges) = crate::traversal::degrees_pass(self);
        self.total_edges = Some(total_edges);
        self.degrees = Some(degrees);
    }

    /// Switches the snapshot to **delta-maintained degrees**: computes them
    /// from scratch once (if absent) and stops [`GraphSnapshot::apply`]
    /// from invalidating them. From then on the caller owns their
    /// correctness: every commit must push the edge births/deaths of its
    /// delta through [`GraphSnapshot::apply_degree_deltas`] *before*
    /// anything reads [`GraphSnapshot::degree`] — the incremental repair
    /// ladder does this from its cached edge adjacency, which is what lets
    /// EJS commits stay off the degraded-full tier.
    pub fn begin_degree_maintenance(&mut self) {
        self.ensure_degrees();
        self.maintain_degrees = true;
    }

    /// Whether degrees are delta-maintained across applies.
    #[inline]
    pub fn degrees_maintained(&self) -> bool {
        self.maintain_degrees && self.degrees.is_some()
    }

    /// Applies per-node degree deltas and the edge-count delta of one
    /// commit (only meaningful under
    /// [`GraphSnapshot::begin_degree_maintenance`]). Degrees are integers,
    /// so removal is exact — the delta-maintained values stay bit-equal to
    /// a from-scratch [`GraphSnapshot::ensure_degrees`] pass (pinned by
    /// `tests/degree_maintenance.rs`).
    pub fn apply_degree_deltas(
        &mut self,
        deltas: impl IntoIterator<Item = (u32, i32)>,
        edge_delta: i64,
    ) {
        let degrees = self
            .degrees
            .as_mut()
            .expect("begin_degree_maintenance() first");
        if degrees.len() < self.total_profiles as usize {
            degrees.resize(self.total_profiles as usize, 0);
        }
        for (node, delta) in deltas {
            let d = &mut degrees[node as usize];
            let next = *d as i64 + delta as i64;
            debug_assert!(next >= 0, "degree of node {node} went negative");
            *d = next as u32;
        }
        let edges = self.total_edges.expect("degrees and edge count co-exist");
        let next = edges as i64 + edge_delta;
        debug_assert!(next >= 0, "total edge count went negative");
        self.total_edges = Some(next as u64);
    }

    /// Convenience (tests/diagnostics): the accumulator of one edge, if it
    /// exists. Runs on the dense scratch engine with a **lock-free
    /// thread-local scratch** — repeated probes neither re-allocate a
    /// profile-sized array nor serialise concurrent callers on a mutex.
    pub fn edge(&self, u: u32, v: u32) -> Option<EdgeAccum> {
        with_diag_scratch(self.total_profiles as usize, |scratch| {
            scratch.load(self, u);
            scratch.get(v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::key::ClusterId;
    use blast_blocking::token_blocking::TokenBlocking;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use blast_datamodel::input::ErInput;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// The Figure 1a profiles (dirty input).
    fn figure1_blocks() -> BlockCollection {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs(
            "p1",
            [
                ("Name", "John Abram Jr"),
                ("profession", "car seller"),
                ("year", "1985"),
                ("Addr.", "Main street"),
            ],
        );
        d.push_pairs(
            "p2",
            [
                ("FirstName", "Ellen"),
                ("SecondName", "Smith"),
                ("year", "85"),
                ("occupation", "retail"),
                ("mail", "Abram st. 30 NY"),
            ],
        );
        d.push_pairs(
            "p3",
            [
                ("name1", "Jon Jr"),
                ("name2", "Abram"),
                ("birth year", "85"),
                ("job", "car retail"),
                ("Loc", "Main st."),
            ],
        );
        d.push_pairs(
            "p4",
            [
                ("full name", "Ellen Smith"),
                ("b. date", "May 10 1985"),
                ("work info", "retailer"),
                ("loc", "Abram street NY"),
            ],
        );
        TokenBlocking::new().build(&ErInput::dirty(d))
    }

    /// Table 1's example values: for (p1, p3) in the Figure 1b collection,
    /// n₁₁ = 4 shared blocks, |B₁| = 6, |B₃| = 7, |B| = 12.
    #[test]
    fn figure1_contingency_counts() {
        let blocks = figure1_blocks();
        let ctx = GraphSnapshot::build(&blocks);
        assert_eq!(ctx.total_blocks(), 12);
        let acc = ctx.edge(0, 2).expect("p1–p3 edge exists");
        assert_eq!(acc.common_blocks, 4); // car, main, abram, jr
        assert_eq!(ctx.node_blocks(0), 6); // 1985 car main abram street jr
        assert_eq!(ctx.node_blocks(2), 7); // car main abram jr 85 st retail
    }

    /// Figure 1c: the blocking graph over the Figure 1b blocks, with
    /// co-occurrence counts as weights.
    #[test]
    fn figure1_graph_weights() {
        let blocks = figure1_blocks();
        let ctx = GraphSnapshot::build(&blocks);
        assert_eq!(ctx.edge(0, 2).unwrap().common_blocks, 4); // p1-p3: car, main, abram, jr
        assert_eq!(ctx.edge(1, 3).unwrap().common_blocks, 4); // p2-p4: ellen, smith, ny, abram
        assert_eq!(ctx.edge(1, 2).unwrap().common_blocks, 4); // p2-p3: abram, 85, st, retail
        assert_eq!(ctx.edge(0, 3).unwrap().common_blocks, 3); // p1-p4: 1985, abram, street
        assert_eq!(ctx.edge(0, 1).unwrap().common_blocks, 1); // p1-p2: abram
        assert_eq!(ctx.edge(2, 3).unwrap().common_blocks, 1); // p3-p4: abram
    }

    #[test]
    fn degrees_and_edge_count() {
        let blocks = figure1_blocks();
        let mut ctx = GraphSnapshot::build(&blocks);
        ctx.ensure_degrees();
        // Figure 1c is a complete graph over 4 nodes: 6 edges, degree 3.
        assert_eq!(ctx.total_edges(), 6);
        for p in 0..4 {
            assert_eq!(ctx.degree(p), 3);
        }
    }

    #[test]
    fn clean_clean_adjacency_is_bipartite() {
        let b = vec![
            Block::new("k1", ClusterId::GLUE, ids(&[0, 1, 2, 3]), 2),
            Block::new("k2", ClusterId::GLUE, ids(&[0, 2]), 2),
        ];
        let blocks = BlockCollection::new(b, true, 2, 4);
        let ctx = GraphSnapshot::build(&blocks);
        let mut map = FastMap::default();
        ctx.accumulate_neighbors(0, &mut map);
        // Node 0 (E1) only sees nodes 2, 3 (E2) — never node 1.
        let mut neigh: Vec<u32> = map.keys().copied().collect();
        neigh.sort_unstable();
        assert_eq!(neigh, vec![2, 3]);
        assert_eq!(map[&2].common_blocks, 2);
        assert_eq!(map[&3].common_blocks, 1);
    }

    #[test]
    fn arcs_accumulates_reciprocal_cardinalities() {
        let b = vec![
            // ‖b‖ = 2·1 = 2 and ‖b‖ = 1·1 = 1.
            Block::new("k1", ClusterId::GLUE, ids(&[0, 1, 2]), 2),
            Block::new("k2", ClusterId::GLUE, ids(&[0, 2]), 2),
        ];
        let blocks = BlockCollection::new(b, true, 2, 3);
        let ctx = GraphSnapshot::build(&blocks);
        let acc = ctx.edge(0, 2).unwrap();
        assert!((acc.arcs - (0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn entropies_flow_into_accumulator() {
        let b = vec![
            Block::new("k1", ClusterId::GLUE, ids(&[0, 1]), 1),
            Block::new("k2", ClusterId::GLUE, ids(&[0, 1]), 1),
        ];
        let blocks = BlockCollection::new(b, true, 1, 2);
        let ctx = GraphSnapshot::build(&blocks).with_block_entropies(vec![3.5, 2.0]);
        let acc = ctx.edge(0, 1).unwrap();
        assert_eq!(acc.common_blocks, 2);
        assert!((acc.entropy_sum - 5.5).abs() < 1e-12);
        // Without entropies the factor defaults to 1 per block.
        let ctx = GraphSnapshot::build(&blocks);
        assert!((ctx.edge(0, 1).unwrap().entropy_sum - 2.0).abs() < 1e-12);
    }

    /// A snapshot patched through a delta equals a snapshot built from the
    /// corresponding collection (slot ids aside).
    #[test]
    fn apply_matches_build() {
        let mut snap = GraphSnapshot::empty(false, 0);
        snap.apply(SnapshotDelta {
            total_profiles: 3,
            slots: vec![
                SlotPatch {
                    slot: 0,
                    members: ids(&[0, 1, 2]),
                    entropy: 1.0,
                },
                SlotPatch {
                    slot: 1,
                    members: ids(&[0, 2]),
                    entropy: 1.0,
                },
            ],
            rows: vec![
                RowPatch {
                    profile: 0,
                    slots: vec![0, 1],
                },
                RowPatch {
                    profile: 1,
                    slots: vec![0],
                },
                RowPatch {
                    profile: 2,
                    slots: vec![0, 1],
                },
            ],
        });
        let b = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 2]), u32::MAX),
        ];
        let batch = GraphSnapshot::build(&BlockCollection::new(b, false, 3, 3));
        assert_eq!(snap.total_blocks(), batch.total_blocks());
        assert_eq!(snap.total_profiles(), batch.total_profiles());
        assert_eq!(
            snap.index().total_assignments(),
            batch.index().total_assignments()
        );
        for p in 0..3 {
            assert_eq!(snap.node_blocks(p), batch.node_blocks(p));
            for v in 0..3 {
                assert_eq!(snap.edge(p, v), batch.edge(p, v), "edge ({p},{v})");
            }
        }
        assert_eq!(snap.version(), 1);

        // Tombstoning a slot brings the graph back to one block.
        snap.apply(SnapshotDelta {
            total_profiles: 3,
            slots: vec![SlotPatch {
                slot: 1,
                members: Vec::new(),
                entropy: 1.0,
            }],
            rows: vec![
                RowPatch {
                    profile: 0,
                    slots: vec![0],
                },
                RowPatch {
                    profile: 2,
                    slots: vec![0],
                },
            ],
        });
        assert_eq!(snap.total_blocks(), 1);
        assert_eq!(snap.edge(0, 2).unwrap().common_blocks, 1);
        assert_eq!(snap.version(), 2);
    }

    /// Maintained degrees survive `apply` and track deltas exactly; without
    /// maintenance, `apply` invalidates them as before.
    #[test]
    fn degree_maintenance_tracks_deltas() {
        let b = vec![Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX)];
        let blocks = BlockCollection::new(b, false, 3, 3);
        let mut snap = GraphSnapshot::build(&blocks);
        assert!(!snap.degrees_maintained());
        snap.begin_degree_maintenance();
        assert!(snap.degrees_maintained());
        assert_eq!((snap.degree(0), snap.total_edges()), (2, 3));

        // Grow the profile space and the block: node 3 joins b0.
        snap.apply(SnapshotDelta {
            total_profiles: 4,
            slots: vec![SlotPatch {
                slot: 0,
                members: ids(&[0, 1, 2, 3]),
                entropy: 1.0,
            }],
            rows: vec![RowPatch {
                profile: 3,
                slots: vec![0],
            }],
        });
        // Degrees survived the apply (new node isolated until patched)...
        assert!(snap.degrees_maintained());
        assert_eq!(snap.degree(3), 0);
        // ...and the maintainer pushes the births: (0,3), (1,3), (2,3).
        snap.apply_degree_deltas([(0, 1), (1, 1), (2, 1), (3, 3)], 3);
        let rebuilt = {
            let b = vec![Block::new(
                "b0",
                ClusterId::GLUE,
                ids(&[0, 1, 2, 3]),
                u32::MAX,
            )];
            let mut s = GraphSnapshot::build(&BlockCollection::new(b, false, 4, 4));
            s.ensure_degrees();
            s
        };
        assert_eq!(snap.total_edges(), rebuilt.total_edges());
        for p in 0..4 {
            assert_eq!(snap.degree(p), rebuilt.degree(p), "degree of {p}");
        }
    }
}
