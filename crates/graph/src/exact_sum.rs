//! An exact, order-independent accumulator for `f64` sums.
//!
//! WEP's global threshold is the *mean* edge weight. A plain sequential
//! `f64` sum is order-dependent (floating-point addition does not
//! associate), which ties the threshold to one specific traversal order —
//! fine for a batch pass, fatal for incremental maintenance, where edges
//! enter and leave the sum in stream order. [`ExactSum`] removes the order
//! dependence altogether: every addend is accumulated *exactly* into a
//! wide fixed-point register (a "superaccumulator" covering the full
//! finite `f64` range), and [`ExactSum::round`] returns the correctly
//! rounded (nearest-even) `f64` of the exact total. Because the register
//! arithmetic is integer, addition and subtraction commute and associate:
//! a sum maintained by deltas is bit-identical to one built from scratch
//! over any ordering of the same multiset — the property the incremental
//! decision stage's running Σw relies on, and the reason the batch
//! [`crate::pruning::Wep`] threshold uses the same accumulator.
//!
//! Costs: ~3 limb updates per [`ExactSum::add`]/[`ExactSum::sub`], 544
//! bytes of state, and an O(68-limb) carry pass per [`ExactSum::round`].

/// Base-2³² limbs spanning 2¯¹⁰⁷⁴ … 2⁹⁷¹·2⁵³ plus carry headroom.
const LIMBS: usize = 68;
/// Scale: the register holds `value · 2^BIAS` as an integer.
const BIAS: i32 = 1074;
/// Lazy-carry budget: limbs accumulate raw ±2³² chunks and are
/// re-normalised before an `i64` limb could overflow.
const RENORM_AFTER: u32 = 1 << 30;

/// Exact sum of finite `f64` values (see module docs).
#[derive(Clone)]
pub struct ExactSum {
    limbs: [i64; LIMBS],
    pending: u32,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self {
            limbs: [0; LIMBS],
            pending: 0,
        }
    }
}

impl std::fmt::Debug for ExactSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactSum")
            .field("value", &self.round())
            .finish()
    }
}

impl ExactSum {
    /// An empty (zero) accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact sum of an iterator of values.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.add(v);
        }
        s
    }

    /// Adds `x` exactly. `x` must be finite.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.accumulate(x, false);
    }

    /// Subtracts `x` exactly. `x` must be finite.
    #[inline]
    pub fn sub(&mut self, x: f64) {
        self.accumulate(x, true);
    }

    /// Resets to zero.
    pub fn clear(&mut self) {
        self.limbs = [0; LIMBS];
        self.pending = 0;
    }

    /// Folds `other` into `self` exactly — the reduction step of a
    /// shard-parallel sum: per-shard partial accumulators merged in any
    /// order yield the same register as accumulating every addend into one,
    /// so the rounded total is bit-identical however the work was split.
    ///
    /// `other`'s limbs are normalised into canonical form first (each limb
    /// in `[0, 2³²)` bar the signed top), so the limb-wise addition grows
    /// every limb of `self` by less than one raw add's worth — counted as a
    /// single `pending` unit against the renormalisation budget.
    pub fn merge(&mut self, other: &ExactSum) {
        let mut theirs = other.limbs;
        normalize(&mut theirs);
        for (mine, limb) in self.limbs.iter_mut().zip(theirs) {
            *mine += limb;
        }
        self.pending += 1;
        if self.pending >= RENORM_AFTER {
            normalize(&mut self.limbs);
            self.pending = 0;
        }
    }

    fn accumulate(&mut self, x: f64, negate: bool) {
        debug_assert!(x.is_finite(), "ExactSum over finite values only");
        if x == 0.0 {
            return;
        }
        let bits = x.to_bits();
        let negative = (bits >> 63 == 1) != negate;
        let exp_field = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // value = m · 2^e with m a 53-bit integer.
        let (m, e) = if exp_field == 0 {
            (frac, -1074)
        } else {
            (frac | (1 << 52), exp_field - 1075)
        };
        let s = (e + BIAS) as usize; // 0 ..= 2045
        let (limb, shift) = (s / 32, s % 32);
        let wide = (m as u128) << shift; // ≤ 84 bits → 3 limbs
        let chunks = [
            (wide & 0xFFFF_FFFF) as i64,
            ((wide >> 32) & 0xFFFF_FFFF) as i64,
            ((wide >> 64) & 0xFFFF_FFFF) as i64,
        ];
        for (i, c) in chunks.into_iter().enumerate() {
            if negative {
                self.limbs[limb + i] -= c;
            } else {
                self.limbs[limb + i] += c;
            }
        }
        self.pending += 1;
        if self.pending >= RENORM_AFTER {
            normalize(&mut self.limbs);
            self.pending = 0;
        }
    }

    /// The correctly rounded (round-to-nearest, ties-to-even) `f64` of the
    /// exact total. Deterministic in the accumulated multiset alone —
    /// independent of add/sub order and of intermediate states.
    pub fn round(&self) -> f64 {
        let mut l = self.limbs;
        normalize(&mut l);
        let negative = l[LIMBS - 1] < 0;
        if negative {
            for limb in l.iter_mut() {
                *limb = -*limb;
            }
            normalize(&mut l);
        }
        let Some(top) = (0..LIMBS).rev().find(|&i| l[i] != 0) else {
            return 0.0;
        };
        // Absolute index of the most significant bit, in 2^-BIAS units.
        let top_bits = 64 - (l[top] as u64).leading_zeros() as i32;
        let msb = 32 * top as i32 + top_bits - 1;
        let sign = if negative { -1.0 } else { 1.0 };
        if msb <= 52 {
            // < 2^53 in 2^-BIAS units: exactly representable (top ≤ 1).
            let mut n = l[0] as u64;
            if top >= 1 {
                n |= (l[1] as u64) << 32;
            }
            return sign * (n as f64) * f64::from_bits(1); // · 2^-1074, exact
        }
        // Window of the top three limbs: bits [32(top-2), 32·top + top_bits).
        let hi = l[top] as u128;
        let mid = if top >= 1 { l[top - 1] as u128 } else { 0 };
        let lo = if top >= 2 { l[top - 2] as u128 } else { 0 };
        let w = (hi << 64) | (mid << 32) | lo;
        let base = 32 * (top as i32 - 2); // absolute index of window bit 0
        let cut = msb - 52 - base; // window bits below the 53-bit mantissa
        debug_assert!(cut >= 1);
        let mut mant = (w >> cut) as u64;
        let round_bit = (w >> (cut - 1)) & 1 == 1;
        let mut sticky = w & ((1u128 << (cut - 1)) - 1) != 0;
        if !sticky && top >= 3 {
            sticky = l[..top - 2].iter().any(|&x| x != 0);
        }
        let mut msb = msb;
        if round_bit && (sticky || mant & 1 == 1) {
            mant += 1;
            if mant == 1 << 53 {
                mant >>= 1;
                msb += 1;
            }
        }
        // value = mant · 2^(msb-52-BIAS), mant ∈ [2^52, 2^53) → normal.
        let exp_field = msb - 51; // (msb - 52 - BIAS) + 1023 + 52… = msb - 51
        if exp_field >= 0x7FF {
            return sign * f64::INFINITY;
        }
        sign * f64::from_bits(((exp_field as u64) << 52) | (mant & ((1 << 52) - 1)))
    }
}

/// Carry-propagates limbs into canonical form: limbs 0..LIMBS-1 in
/// [0, 2³²), the top limb absorbing the (possibly negative) remainder.
fn normalize(limbs: &mut [i64; LIMBS]) {
    let mut carry = 0i64;
    for limb in limbs.iter_mut().take(LIMBS - 1) {
        let v = *limb + carry;
        let low = v & 0xFFFF_FFFF;
        carry = (v - low) >> 32;
        *limb = low;
    }
    limbs[LIMBS - 1] += carry;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(ExactSum::new().round(), 0.0);
        assert_eq!(ExactSum::new().round().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn small_integers_are_exact() {
        let mut s = ExactSum::new();
        let mut reference = 0i64;
        for (i, v) in [3i64, -7, 1 << 40, -(1 << 39), 12345, -3]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 {
                s.add(*v as f64);
                reference += v;
            } else {
                s.sub(-*v as f64);
                reference += v;
            }
        }
        assert_eq!(s.round(), reference as f64);
    }

    #[test]
    fn merge_matches_single_accumulator_bitwise() {
        // Any partition of the addends into per-shard partials, merged in
        // any order, must round to the same bits as one serial accumulator.
        let values: Vec<f64> = (0..257)
            .map(|i| ((i * 37 + 11) as f64).sin() * 10f64.powi((i % 61) - 30))
            .collect();
        let whole = ExactSum::of(values.iter().copied());
        for shards in [2usize, 3, 7] {
            let partials: Vec<ExactSum> = (0..shards)
                .map(|s| {
                    ExactSum::of(
                        values
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % shards == s)
                            .map(|(_, &v)| v),
                    )
                })
                .collect();
            let mut forward = ExactSum::new();
            for p in &partials {
                forward.merge(p);
            }
            let mut backward = ExactSum::new();
            for p in partials.iter().rev() {
                backward.merge(p);
            }
            assert_eq!(forward.round().to_bits(), whole.round().to_bits());
            assert_eq!(backward.round().to_bits(), whole.round().to_bits());
        }
    }

    #[test]
    fn merge_into_nonempty_accumulator() {
        let mut a = ExactSum::of([0.1, 1e300, -2.5]);
        let b = ExactSum::of([5e-320, 1e-17, 42.0]);
        a.merge(&b);
        let whole = ExactSum::of([0.1, 1e300, -2.5, 5e-320, 1e-17, 42.0]);
        assert_eq!(a.round().to_bits(), whole.round().to_bits());
    }

    #[test]
    fn add_then_sub_cancels_bitwise() {
        let mut s = ExactSum::new();
        for v in [0.1, 1e300, 5e-320, -2.5, 1e-17] {
            s.add(v);
        }
        s.add(42.0);
        for v in [0.1, 1e300, 5e-320, -2.5, 1e-17] {
            s.sub(v);
        }
        assert_eq!(s.round().to_bits(), 42.0f64.to_bits());
    }

    #[test]
    fn order_independent_bitwise() {
        let values = [0.1, 0.2, 0.3, 1e16, -1e16, 7.5e-12, 0.1, 0.7];
        let forward = ExactSum::of(values.iter().copied()).round();
        let backward = ExactSum::of(values.iter().rev().copied()).round();
        assert_eq!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn tenth_times_ten() {
        // Σ of ten 0.1s: the exact total is 10 · fl(0.1) =
        // 1.00000000000000005551…, whose correctly rounded double is 1.0 —
        // unlike the naive sequential sum (0.9999999999999999).
        let s = ExactSum::of(std::iter::repeat_n(0.1, 10));
        assert_eq!(s.round().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn cancellation_keeps_tiny_residue() {
        // (1e16 + 1e-3) - 1e16 must recover 1e-3 exactly — a plain f64
        // sequential sum loses it entirely.
        let mut s = ExactSum::new();
        s.add(1e16);
        s.add(1e-3);
        s.sub(1e16);
        assert_eq!(s.round().to_bits(), 1e-3f64.to_bits());
    }

    #[test]
    fn subnormals_round_trip() {
        let tiny = f64::from_bits(3); // 3 · 2^-1074
        let mut s = ExactSum::new();
        s.add(tiny);
        s.add(tiny);
        assert_eq!(s.round().to_bits(), f64::from_bits(6).to_bits());
    }

    /// Reference: values m·2^e with bounded exponents sum exactly in i128
    /// at scale 2^40; `i128 as f64` is correctly rounded, the power-of-two
    /// scale-back is exact.
    fn reference_sum(parts: &[(i32, i8)]) -> f64 {
        let total: i128 = parts
            .iter()
            .map(|&(m, e)| (m as i128) << (e as i32 + 20) as u32)
            .sum();
        (total as f64) * (2.0f64).powi(-60)
    }

    fn value(m: i32, e: i8) -> f64 {
        (m as f64) * (2.0f64).powi(e as i32 - 40)
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Exact accumulation ≡ exact integer arithmetic, bit-for-bit,
            /// including removal of a random subset afterwards.
            #[test]
            fn prop_matches_integer_reference(
                parts in proptest::collection::vec((-1_000_000i32..1_000_000, -20i8..20), 0..60),
                removals in proptest::collection::vec(0u8..2, 0..60),
            ) {
                let mut s = ExactSum::new();
                for &(m, e) in &parts {
                    s.add(value(m, e));
                }
                prop_assert_eq!(s.round().to_bits(), reference_sum(&parts).to_bits());

                // Remove a subset; the survivors' exact sum must match a
                // from-scratch accumulation of just the survivors.
                let mut kept: Vec<(i32, i8)> = Vec::new();
                for (i, &(m, e)) in parts.iter().enumerate() {
                    if removals.get(i).copied().unwrap_or(0) == 1 {
                        s.sub(value(m, e));
                    } else {
                        kept.push((m, e));
                    }
                }
                prop_assert_eq!(s.round().to_bits(), reference_sum(&kept).to_bits());
            }
        }
    }
}
