//! The cold tier: an append-only frame arena for demoted structure rows.
//!
//! Bounded-memory streaming demotes rarely-touched rows — posting lists,
//! snapshot block memberships, packed edge-accumulator rows — out of their
//! hot `Vec` representation into compact **frames**: length-prefixed,
//! checksummed byte records appended to an in-memory arena or, behind a
//! [`SpillBackend`], to a temp file owned by the `io` crate. The codecs
//! here are *lossless by construction* (delta varints for ascending id
//! lists, raw `f64::to_bits` for weights), so demotion is purely a
//! representation change: a rehydrated row is bit-identical to the row
//! that was evicted, which is what keeps the budgeted pipeline on the
//! repo's standing batch-equivalence contract at any eviction cadence.
//!
//! A frame on storage is `[payload_len: u32 LE][fnv1a32: u32 LE][payload]`.
//! Reads validate both the length and the checksum, so a truncated or
//! corrupted spill file surfaces as a typed [`ColdError`] instead of
//! silently diverging the candidate set.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Storage behind a [`ColdStore`] when frames spill out of memory.
///
/// Implemented by `blast_io::spill::TempSpillFile`; kept as a trait here
/// so the graph crate stays free of file I/O.
pub trait SpillBackend: fmt::Debug + Send + Sync {
    /// Appends `bytes`, returning the offset they start at.
    fn append(&mut self, bytes: &[u8]) -> Result<u64, String>;
    /// Reads exactly `buf.len()` bytes starting at `off`; returns the
    /// number of bytes actually available (short on truncation).
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<usize, String>;
    /// Discards all content (compaction rewrites live frames afterwards).
    fn truncate(&mut self) -> Result<(), String>;
    /// Total bytes currently stored.
    fn len(&self) -> u64;
    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Handle to one frame inside a [`ColdStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef {
    off: u64,
    len: u32,
}

impl FrameRef {
    /// Payload length in bytes.
    pub fn payload_len(&self) -> u32 {
        self.len
    }
}

/// Why a cold frame could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColdError {
    /// The storage ends before the frame does.
    Truncated { off: u64, want: usize, have: usize },
    /// The stored header disagrees with the frame handle or the payload
    /// bytes fail their checksum.
    Checksum { off: u64, want: u32, got: u32 },
    /// The spill backend failed outright.
    Io { off: u64, detail: String },
}

impl fmt::Display for ColdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColdError::Truncated { off, want, have } => write!(
                f,
                "cold frame at offset {off} truncated: wanted {want} bytes, storage has {have}"
            ),
            ColdError::Checksum { off, want, got } => write!(
                f,
                "cold frame at offset {off} corrupted: checksum {got:#010x} != {want:#010x}"
            ),
            ColdError::Io { off, detail } => {
                write!(f, "cold frame at offset {off}: spill I/O failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ColdError {}

/// Aggregated cold-tier telemetry of one store (or a sum over stores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdStats {
    /// Rows demoted to the cold tier (cumulative).
    pub evictions: u64,
    /// Cold rows read back — transiently or promoted (cumulative).
    pub rehydrations: u64,
    /// Live cold frame bytes resident in memory (0 when spilled).
    pub cold_bytes: usize,
    /// Live cold frame bytes held in the spill backend.
    pub spilled_bytes: usize,
}

impl ColdStats {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &ColdStats) {
        self.evictions += other.evictions;
        self.rehydrations += other.rehydrations;
        self.cold_bytes += other.cold_bytes;
        self.spilled_bytes += other.spilled_bytes;
    }
}

const FRAME_HEADER: usize = 8;
/// Compact once dead frames dominate live ones and amount to real memory.
const COMPACT_DEAD_FLOOR: usize = 64 * 1024;

/// FNV-1a over the payload — cheap, deterministic, and strong enough to
/// catch the bit flips and truncations the spill tests inject.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only arena of checksummed frames with optional spill.
///
/// Owners keep [`FrameRef`]s in their row slots; `free` only does
/// bookkeeping (the arena reclaims space on [`ColdStore::compact`], which
/// the owner drives by handing over its live refs for rewriting).
#[derive(Debug)]
pub struct ColdStore {
    arena: Vec<u8>,
    spill: Option<Box<dyn SpillBackend>>,
    live_bytes: usize,
    dead_bytes: usize,
    evictions: u64,
    // Reads happen under `&self` (transient decodes on shared paths), so
    // the rehydration counter is atomic.
    rehydrations: AtomicU64,
}

impl ColdStore {
    /// An in-memory store (frames live in the arena).
    pub fn in_memory() -> Self {
        ColdStore {
            arena: Vec::new(),
            spill: None,
            live_bytes: 0,
            dead_bytes: 0,
            evictions: 0,
            rehydrations: AtomicU64::new(0),
        }
    }

    /// A spilling store: frames are appended to `backend` instead of the
    /// in-memory arena.
    pub fn spilled(backend: Box<dyn SpillBackend>) -> Self {
        ColdStore {
            spill: Some(backend),
            ..ColdStore::in_memory()
        }
    }

    /// True when frames go to a spill backend rather than the arena.
    pub fn is_spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// Appends one frame and returns its handle. Counts an eviction.
    pub fn put(&mut self, payload: &[u8]) -> FrameRef {
        let len = u32::try_from(payload.len()).expect("cold frame over 4 GiB");
        let checksum = fnv1a32(payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&checksum.to_le_bytes());
        frame.extend_from_slice(payload);
        let off = match &mut self.spill {
            Some(backend) => backend
                .append(&frame)
                .unwrap_or_else(|e| panic!("cold tier: spill append failed: {e}")),
            None => {
                let off = self.arena.len() as u64;
                self.arena.extend_from_slice(&frame);
                off
            }
        };
        self.live_bytes += frame.len();
        self.evictions += 1;
        FrameRef { off, len }
    }

    /// Reads a frame's payload back, validating length and checksum.
    /// Counts a rehydration on success.
    pub fn get(&self, frame: FrameRef) -> Result<Vec<u8>, ColdError> {
        let total = FRAME_HEADER + frame.len as usize;
        let mut raw = vec![0u8; total];
        match &self.spill {
            Some(backend) => {
                let have =
                    backend
                        .read_at(frame.off, &mut raw)
                        .map_err(|detail| ColdError::Io {
                            off: frame.off,
                            detail,
                        })?;
                if have < total {
                    return Err(ColdError::Truncated {
                        off: frame.off,
                        want: total,
                        have,
                    });
                }
            }
            None => {
                let start = frame.off as usize;
                let have = self.arena.len().saturating_sub(start);
                if have < total {
                    return Err(ColdError::Truncated {
                        off: frame.off,
                        want: total,
                        have,
                    });
                }
                raw.copy_from_slice(&self.arena[start..start + total]);
            }
        }
        let stored_len = u32::from_le_bytes(raw[0..4].try_into().unwrap());
        let stored_sum = u32::from_le_bytes(raw[4..8].try_into().unwrap());
        let payload = raw.split_off(FRAME_HEADER);
        if stored_len != frame.len {
            // A foreign or shifted header: report as corruption, not a
            // panic — the stored length no longer matches the handle.
            return Err(ColdError::Checksum {
                off: frame.off,
                want: frame.len,
                got: stored_len,
            });
        }
        let sum = fnv1a32(&payload);
        if sum != stored_sum {
            return Err(ColdError::Checksum {
                off: frame.off,
                want: stored_sum,
                got: sum,
            });
        }
        self.rehydrations.fetch_add(1, Ordering::Relaxed);
        Ok(payload)
    }

    /// Marks a frame dead (space reclaimed by the next `compact`).
    pub fn free(&mut self, frame: FrameRef) {
        let total = FRAME_HEADER + frame.len as usize;
        self.live_bytes = self.live_bytes.saturating_sub(total);
        self.dead_bytes += total;
    }

    /// True when enough dead bytes accumulated that a compaction pays.
    pub fn wants_compaction(&self) -> bool {
        self.dead_bytes >= COMPACT_DEAD_FLOOR && self.dead_bytes >= self.live_bytes
    }

    /// Rewrites the live frames (handed over as mutable refs by the
    /// owner) into fresh storage, dropping the dead bytes. Refs are
    /// updated in place.
    pub fn compact(&mut self, refs: Vec<&mut FrameRef>) {
        let payloads: Vec<Vec<u8>> = refs
            .iter()
            .map(|r| {
                self.get(**r)
                    .unwrap_or_else(|e| panic!("cold tier: compaction read failed: {e}"))
            })
            .collect();
        // Compaction reads are internal moves, not rehydrations.
        self.rehydrations
            .fetch_sub(payloads.len() as u64, Ordering::Relaxed);
        let evictions = self.evictions;
        match &mut self.spill {
            Some(backend) => backend
                .truncate()
                .unwrap_or_else(|e| panic!("cold tier: spill truncate failed: {e}")),
            None => self.arena.clear(),
        }
        self.live_bytes = 0;
        self.dead_bytes = 0;
        for (r, payload) in refs.into_iter().zip(&payloads) {
            *r = self.put(payload);
        }
        // Re-appending is not an eviction either.
        self.evictions = evictions;
    }

    /// Drops every frame, live or dead (telemetry counters persist).
    pub fn clear(&mut self) {
        if let Some(backend) = &mut self.spill {
            backend
                .truncate()
                .unwrap_or_else(|e| panic!("cold tier: spill truncate failed: {e}"));
        }
        self.arena.clear();
        self.arena.shrink_to_fit();
        self.live_bytes = 0;
        self.dead_bytes = 0;
    }

    /// Cumulative evictions, rehydrations and live byte levels.
    pub fn stats(&self) -> ColdStats {
        let (cold, spilled) = if self.spill.is_some() {
            (0, self.live_bytes)
        } else {
            (self.live_bytes, 0)
        };
        ColdStats {
            evictions: self.evictions,
            rehydrations: self.rehydrations.load(Ordering::Relaxed),
            cold_bytes: cold,
            spilled_bytes: spilled,
        }
    }
}

// ---------------------------------------------------------------------------
// Codecs: lossless, deterministic, and compact for the shapes we evict.
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
        assert!(shift < 64, "cold codec: varint overran 64 bits");
    }
}

const U32S_DELTA: u8 = 1;
const U32S_RAW: u8 = 0;

/// Encodes a `u32` list: delta varints when strictly ascending (posting
/// lists, block memberships), raw varints otherwise. Lossless either way.
pub fn encode_u32s(values: &[u32], out: &mut Vec<u8>) {
    let ascending = values.windows(2).all(|w| w[0] < w[1]);
    out.push(if ascending { U32S_DELTA } else { U32S_RAW });
    put_varint(out, values.len() as u64);
    if ascending {
        let mut prev = 0u32;
        for (i, &v) in values.iter().enumerate() {
            let delta = if i == 0 { v } else { v - prev };
            put_varint(out, u64::from(delta));
            prev = v;
        }
    } else {
        for &v in values {
            put_varint(out, u64::from(v));
        }
    }
}

/// Decodes [`encode_u32s`] output, advancing `pos`.
pub fn decode_u32s(bytes: &[u8], pos: &mut usize, out: &mut Vec<u32>) {
    let tag = bytes[*pos];
    *pos += 1;
    let count = get_varint(bytes, pos) as usize;
    out.reserve(count);
    let mut prev = 0u32;
    for i in 0..count {
        let raw = get_varint(bytes, pos) as u32;
        let v = if tag == U32S_DELTA && i > 0 {
            prev + raw
        } else {
            raw
        };
        out.push(v);
        prev = v;
    }
}

/// Appends an `f64` as its raw bits — bit-identical round trips.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64` written by [`put_f64`], advancing `pos`.
pub fn get_f64(bytes: &[u8], pos: &mut usize) -> f64 {
    let raw: [u8; 8] = bytes[*pos..*pos + 8].try_into().unwrap();
    *pos += 8;
    f64::from_bits(u64::from_le_bytes(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_memory() {
        let mut store = ColdStore::in_memory();
        let a = store.put(b"alpha");
        let b = store.put(&[0u8; 300]);
        assert_eq!(store.get(a).unwrap(), b"alpha");
        assert_eq!(store.get(b).unwrap(), vec![0u8; 300]);
        let s = store.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.rehydrations, 2);
        assert_eq!(s.cold_bytes, 5 + 300 + 2 * FRAME_HEADER);
        assert_eq!(s.spilled_bytes, 0);
    }

    #[test]
    fn truncated_arena_reads_are_typed_errors() {
        let mut store = ColdStore::in_memory();
        let frame = store.put(b"some payload");
        store.arena.truncate(6);
        match store.get(frame) {
            Err(ColdError::Truncated { want, have, .. }) => {
                assert!(have < want);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_its_checksum() {
        let mut store = ColdStore::in_memory();
        let frame = store.put(b"some payload");
        let last = store.arena.len() - 1;
        store.arena[last] ^= 0xff;
        assert!(matches!(store.get(frame), Err(ColdError::Checksum { .. })));
        // Failed reads are not rehydrations.
        assert_eq!(store.stats().rehydrations, 0);
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_preserves_refs() {
        let mut store = ColdStore::in_memory();
        let mut live: Vec<FrameRef> = Vec::new();
        for i in 0..64u32 {
            let payload = vec![i as u8; 2048];
            let frame = store.put(&payload);
            if i % 2 == 0 {
                live.push(frame);
            } else {
                store.free(frame);
            }
        }
        assert!(store.wants_compaction());
        let before = store.stats();
        store.compact(live.iter_mut().collect());
        let after = store.stats();
        assert_eq!(
            after.evictions, before.evictions,
            "compaction is not eviction"
        );
        assert_eq!(after.rehydrations, before.rehydrations);
        assert!(after.cold_bytes < before.cold_bytes + before.spilled_bytes + 32 * 2048);
        assert_eq!(store.dead_bytes, 0);
        for (i, frame) in live.iter().enumerate() {
            assert_eq!(store.get(*frame).unwrap(), vec![(i * 2) as u8; 2048]);
        }
    }

    #[test]
    fn u32_codec_round_trips_ascending_and_unsorted() {
        for values in [
            vec![],
            vec![7],
            vec![0, 1, 2, 1000, 1_000_000],
            vec![5, 3, 3, 9, 0],
            (0..500u32).map(|i| i * 3 + 1).collect::<Vec<_>>(),
        ] {
            let mut buf = Vec::new();
            encode_u32s(&values, &mut buf);
            let mut pos = 0;
            let mut back = Vec::new();
            decode_u32s(&buf, &mut pos, &mut back);
            assert_eq!(back, values);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn ascending_lists_delta_compress() {
        let values: Vec<u32> = (1_000_000..1_002_000).collect();
        let mut buf = Vec::new();
        encode_u32s(&values, &mut buf);
        // 2000 deltas of 1 → ~1 byte each, vs 8000 raw bytes.
        assert!(buf.len() < values.len() * 2, "{} bytes", buf.len());
    }

    #[test]
    fn f64_codec_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, f64::INFINITY] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_f64(&buf, &mut pos).to_bits(), v.to_bits());
        }
    }
}
