//! Cardinality Edge Pruning: sort all edges by weight and keep the top K
//! (§2.2, \[20\]). K defaults to half the total block assignments
//! (K = ⌊Σ_b |b| / 2⌋), the convention of the reference implementation.
//!
//! Fused pass: the weighted edge list is materialised **once**; the top-K
//! cutoff (`select_nth_unstable`), the strictly-above filter and the
//! deterministic tie-break all run over that in-memory list. The old engine
//! re-ran the full quadratic traversal up to four times (weights, all
//! pairs, above-cutoff, at-cutoff).

use crate::context::GraphSnapshot;
use crate::pruning::common::{collect_weighted_edges, pair};
use crate::retained::RetainedPairs;
use crate::weights::EdgeWeigher;
use blast_datamodel::entity::ProfileId;

/// Cardinality Edge Pruning (global top-K).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cep {
    /// Optional explicit K; when `None`, K = ⌊Σ_b |b| / 2⌋.
    pub k: Option<u64>,
}

impl Cep {
    /// CEP with the default K.
    pub fn new() -> Self {
        Self::default()
    }

    /// CEP with an explicit budget.
    pub fn with_k(k: u64) -> Self {
        Self { k: Some(k) }
    }

    /// The comparison budget for this graph.
    pub fn budget(&self, ctx: &GraphSnapshot) -> u64 {
        self.k
            .unwrap_or_else(|| ctx.index().total_assignments() / 2)
    }

    /// Prunes the graph, keeping the K heaviest edges (ties broken by
    /// ascending (u, v) so results are deterministic). Single traversal:
    /// everything after the edge materialisation is in-memory.
    pub fn prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        Self::prune_edges(self.budget(ctx), &collect_weighted_edges(ctx, weigher))
    }

    /// The selection stage alone, over an already-materialised weighted edge
    /// list in canonical `(u, v)` ascending order with the comparison budget
    /// `k` (see [`Cep::budget`]). Shared by sweeps and incremental repair;
    /// identical cutoff and tie-break semantics to [`Cep::prune`].
    pub fn prune_edges(k: u64, edges: &[(u32, u32, f64)]) -> RetainedPairs {
        let k = k as usize;
        if k == 0 {
            return RetainedPairs::default();
        }
        if edges.len() <= k {
            let pairs = edges.iter().map(|&(u, v, _)| pair(u, v)).collect();
            return RetainedPairs::new(pairs);
        }
        // K-th largest as cutoff.
        let mut weights: Vec<f64> = edges.iter().map(|&(_, _, w)| w).collect();
        let idx = k - 1;
        let (_, cutoff, _) =
            weights.select_nth_unstable_by(idx, |a, b| b.partial_cmp(a).expect("no NaN weights"));
        let cutoff = *cutoff;
        let strictly_above = weights.iter().filter(|&&w| w > cutoff).count();
        let mut ties_wanted = k - strictly_above;

        // Retain everything above the cutoff, plus the first `ties_wanted`
        // edges at the cutoff in (u, v) order (the edge list is already
        // sorted ascending by (u, v)).
        let mut pairs: Vec<(ProfileId, ProfileId)> = Vec::with_capacity(k);
        for &(u, v, w) in edges {
            if w > cutoff {
                pairs.push(pair(u, v));
            } else if w == cutoff && ties_wanted > 0 {
                pairs.push(pair(u, v));
                ties_wanted -= 1;
            }
        }
        RetainedPairs::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// CBS weights: (0,1)=3, (0,2)=1, (1,2)=1, (0,3)=1.
    fn blocks() -> BlockCollection {
        let b = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[0, 1, 3]), u32::MAX),
        ];
        BlockCollection::new(b, false, 4, 4)
    }

    #[test]
    fn explicit_k_keeps_heaviest() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        let retained = Cep::with_k(1).prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 1);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn ties_broken_deterministically() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        // k=2: edge (0,1) then the first weight-1 edge in (u,v) order: (0,2).
        let retained = Cep::with_k(2).prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 2);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
        assert!(retained.contains(ProfileId(0), ProfileId(2)));
    }

    #[test]
    fn default_budget_is_half_assignments() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        // assignments = 3 + 2 + 3 = 8 → K = 4 ≥ edge count → all retained.
        let cep = Cep::new();
        assert_eq!(cep.budget(&ctx), 4);
        let retained = cep.prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 4);
    }

    #[test]
    fn k_zero_retains_nothing() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        assert!(Cep::with_k(0).prune(&ctx, &WeightingScheme::Cbs).is_empty());
    }

    #[test]
    fn k_larger_than_edges_retains_all() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        let retained = Cep::with_k(100).prune(&ctx, &WeightingScheme::Cbs);
        // Graph edges: (0,1),(0,2),(1,2),(0,3),(1,3).
        assert_eq!(retained.len(), 5);
    }
}
