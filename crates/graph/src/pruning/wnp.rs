//! Weight Node Pruning: per-node mean-weight thresholds (§2.2, \[20\]).
//!
//! Each node computes θᵢ = mean weight of its adjacent edges. An edge is
//! related to two thresholds (Fig. 7); *redefined* WNP (wnp₁) keeps it when
//! it passes at least one, *reciprocal* WNP (wnp₂) when it passes both. The
//! dependence of the mean on the number of low-weight edges is exactly the
//! pathology BLAST's pruning fixes (Fig. 6) — a test below pins it.

use crate::context::GraphSnapshot;
use crate::pruning::common::{collect_edges, node_pass, pair};
use crate::pruning::NodeCentricMode;
use crate::retained::RetainedPairs;
use crate::weights::EdgeWeigher;

/// Weight Node Pruning with mean-of-adjacent-edges thresholds.
#[derive(Debug, Clone, Copy)]
pub struct Wnp {
    /// How the two-threshold ambiguity is resolved.
    pub mode: NodeCentricMode,
}

impl Wnp {
    /// wnp₁: retain edges passing at least one endpoint's threshold.
    pub fn redefined() -> Self {
        Self {
            mode: NodeCentricMode::Redefined,
        }
    }

    /// wnp₂: retain edges passing both endpoints' thresholds.
    pub fn reciprocal() -> Self {
        Self {
            mode: NodeCentricMode::Reciprocal,
        }
    }

    /// The per-node thresholds (mean adjacent weight; +∞ for isolated nodes
    /// so they can never accept an edge).
    pub fn thresholds(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> Vec<f64> {
        node_pass(ctx, weigher, |_, adj| {
            if adj.is_empty() {
                f64::INFINITY
            } else {
                adj.iter().map(|(_, w)| *w).sum::<f64>() / adj.len() as f64
            }
        })
    }

    /// Prunes the graph.
    pub fn prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        let thresholds = self.thresholds(ctx, weigher);
        let mode = self.mode;
        let pairs = collect_edges(ctx, weigher, |u, v, w| {
            let pass_u = w >= thresholds[u as usize];
            let pass_v = w >= thresholds[v as usize];
            let keep = match mode {
                NodeCentricMode::Redefined => pass_u || pass_v,
                NodeCentricMode::Reciprocal => pass_u && pass_v,
            };
            keep.then(|| pair(u, v))
        });
        RetainedPairs::new(pairs)
    }

    /// The per-node thresholds derived from an already-materialised weighted
    /// edge list in canonical `(u, v)` ascending order. For each node the
    /// incident weights are accumulated in the same ascending-neighbour
    /// order as the adjacency pass of [`Wnp::thresholds`], so the means are
    /// bit-identical (edges `(x, n)` with `x < n` precede the `(n, v)` run,
    /// both ascending).
    pub fn thresholds_from_edges(n_nodes: usize, edges: &[(u32, u32, f64)]) -> Vec<f64> {
        let mut sums = vec![0.0f64; n_nodes];
        let mut counts = vec![0u32; n_nodes];
        for &(u, v, w) in edges {
            sums[u as usize] += w;
            counts[u as usize] += 1;
            sums[v as usize] += w;
            counts[v as usize] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { f64::INFINITY } else { s / c as f64 })
            .collect()
    }

    /// Whether edge `(u, v, w)` survives against the per-node thresholds —
    /// the flip-emitting decision primitive shared by [`Wnp::prune_edges`]
    /// and incremental repair.
    #[inline]
    pub fn decide(&self, thresholds: &[f64], u: u32, v: u32, w: f64) -> bool {
        let pass_u = w >= thresholds[u as usize];
        let pass_v = w >= thresholds[v as usize];
        match self.mode {
            NodeCentricMode::Redefined => pass_u || pass_v,
            NodeCentricMode::Reciprocal => pass_u && pass_v,
        }
    }

    /// The retention stage alone, over a materialised edge list and
    /// per-node thresholds (from [`Wnp::thresholds`] or
    /// [`Wnp::thresholds_from_edges`]). Shared by sweeps and incremental
    /// repair.
    pub fn prune_edges(&self, thresholds: &[f64], edges: &[(u32, u32, f64)]) -> RetainedPairs {
        let pairs = edges
            .iter()
            .filter(|&&(u, v, w)| self.decide(thresholds, u, v, w))
            .map(|&(u, v, _)| pair(u, v))
            .collect();
        RetainedPairs::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// A star around node 0 with CBS weights 4 (to 1) and 1 (to 2, 3):
    /// θ₀ = 2, θ₁ = 4, θ₂ = θ₃ = 1.
    fn star() -> BlockCollection {
        let mut blocks = vec![Block::new(
            "s",
            ClusterId::GLUE,
            ids(&[0, 1, 2, 3]),
            u32::MAX,
        )];
        for i in 0..3 {
            blocks.push(Block::new(
                format!("h{i}"),
                ClusterId::GLUE,
                ids(&[0, 1]),
                u32::MAX,
            ));
        }
        BlockCollection::new(blocks, false, 4, 4)
    }

    #[test]
    fn thresholds_are_node_means() {
        let blocks = star();
        let ctx = GraphSnapshot::build(&blocks);
        let t = Wnp::redefined().thresholds(&ctx, &WeightingScheme::Cbs);
        // node 0: edges 4,1,1 → 2; node 1: 4,1,1 → 2; node 2: 1,1,1 → 1.
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!((t[1] - 2.0).abs() < 1e-12);
        assert!((t[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reciprocal_stricter_than_redefined() {
        let blocks = star();
        let ctx = GraphSnapshot::build(&blocks);
        let r1 = Wnp::redefined().prune(&ctx, &WeightingScheme::Cbs);
        let r2 = Wnp::reciprocal().prune(&ctx, &WeightingScheme::Cbs);
        assert!(r2.len() <= r1.len());
        for (a, b) in r2.iter() {
            assert!(r1.contains(a, b), "reciprocal ⊆ redefined");
        }
        // (0,1) has weight 4 ≥ both thresholds → always retained.
        assert!(r2.contains(ProfileId(0), ProfileId(1)));
    }

    /// The Figure 6 pathology: adding low-weight neighbours to p1 lowers its
    /// mean threshold, reviving the spurious p1–p4 edge even though nothing
    /// about p1/p4 changed.
    #[test]
    fn figure6_mean_threshold_depends_on_degree() {
        // Weights around node 0: 4 (to 1), 2 (to 2), 1 (to 3).
        fn base_blocks(extra: usize) -> BlockCollection {
            let mut blocks = vec![
                Block::new("w4a", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
                Block::new("w4b", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
                Block::new("w4c", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
                Block::new("w4d", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
                Block::new("w2a", ClusterId::GLUE, ids(&[0, 2]), u32::MAX),
                Block::new("w2b", ClusterId::GLUE, ids(&[0, 2]), u32::MAX),
                Block::new("w1", ClusterId::GLUE, ids(&[0, 3]), u32::MAX),
            ];
            // `extra` additional weight-1 neighbours (the p5, p6 of Fig. 6a).
            for i in 0..extra {
                blocks.push(Block::new(
                    format!("x{i}"),
                    ClusterId::GLUE,
                    ids(&[0, 4 + i as u32]),
                    u32::MAX,
                ));
            }
            let n = 4 + extra as u32;
            BlockCollection::new(blocks, false, n, n)
        }

        // Without extras: θ₀ = (4+2+1)/3 = 2.33 → edge (0,2) pruned at node 0.
        let b = base_blocks(0);
        let ctx = GraphSnapshot::build(&b);
        let t = Wnp::redefined().thresholds(&ctx, &WeightingScheme::Cbs);
        assert!(t[0] > 2.0);

        // With two extras: θ₀ = (4+2+1+1+1)/5 = 1.8 → edge (0,2) now passes.
        let b = base_blocks(2);
        let ctx = GraphSnapshot::build(&b);
        let t = Wnp::redefined().thresholds(&ctx, &WeightingScheme::Cbs);
        assert!(
            t[0] < 2.0,
            "threshold dropped because of unrelated profiles"
        );
    }

    #[test]
    fn empty_graph() {
        let blocks = BlockCollection::new(vec![], false, 2, 2);
        let ctx = GraphSnapshot::build(&blocks);
        assert!(Wnp::redefined()
            .prune(&ctx, &WeightingScheme::Cbs)
            .is_empty());
    }
}
