//! Shared parallel passes over the implicit blocking graph.
//!
//! Everything here is deterministic: nodes are processed in id order,
//! adjacency lists are sorted by neighbour id before any floating-point
//! accumulation, and per-chunk results are merged in chunk order. All
//! passes run on the dense scratch-array engine of [`crate::traversal`]
//! with work-stealing scheduling; chunk geometry is independent of the
//! thread count, so results — including float folds — are bit-identical
//! across thread counts.

use crate::context::{EdgeAccum, GraphSnapshot};
use crate::traversal::{chunk_len, node_chunks, owner_chunks, NodeScratch};
use crate::weights::EdgeWeigher;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::parallel::parallel_work_steal;

/// A reusable node mask with O(1) clearing: membership is "stamp equals the
/// current epoch", so starting a fresh mask is an epoch bump instead of the
/// per-commit `vec![false; n]` allocation-and-refill the incremental repair
/// used to pay. [`EpochMask::begin`] grows the stamp array monotonically
/// (amortised — never per commit) and handles epoch wrap-around by one full
/// refill every 2³² commits.
#[derive(Debug, Default)]
pub struct EpochMask {
    stamps: Vec<u32>,
    epoch: u32,
    all: bool,
}

impl EpochMask {
    /// An empty mask (everything unmarked until the first [`EpochMask::begin`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh mask over `n` nodes: everything unmarked, O(1) except
    /// for amortised growth and the 2³²-commit wrap refill.
    pub fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.all = false;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Marks `u`, returning whether it was newly marked.
    #[inline]
    pub fn mark(&mut self, u: u32) -> bool {
        let s = &mut self.stamps[u as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Marks every node (the degraded-full path) without touching stamps.
    pub fn mark_all(&mut self) {
        self.all = true;
    }

    /// Whether `u` is marked in the current epoch.
    #[inline]
    pub fn contains(&self, u: u32) -> bool {
        self.all
            || self
                .stamps
                .get(u as usize)
                .is_some_and(|&s| s == self.epoch)
    }
}

/// Maps a finite edge weight onto `u64` *rank bits*: `rank_bits(a) <
/// rank_bits(b) ⟺ a > b` (ascending rank = descending weight), with `-0.0`
/// normalised onto `+0.0` so bitwise rank ties coincide exactly with `f64`
/// equality of the batch deciders. Composed with an ascending `(u, v)`
/// tie-break this is the total retention order shared by CEP's top-K (rank
/// prefix of length K) and WEP's threshold (rank prefix up to the mean) —
/// the key order of the incremental ordered weight index.
#[inline]
pub fn weight_rank_bits(w: f64) -> u64 {
    debug_assert!(!w.is_nan(), "no NaN weights");
    let w = if w == 0.0 { 0.0 } else { w };
    let b = w.to_bits();
    // Standard total-order map (sign-magnitude → monotone unsigned)…
    let ascending = if b >> 63 == 1 { !b } else { b | (1 << 63) };
    // …inverted so heavier edges rank first.
    !ascending
}

/// Materialises every edge exactly once as `(u, v, weight)` in one
/// traversal, in deterministic order (ascending `u`, then ascending `v`).
///
/// This is the fused-pass primitive behind WEP and CEP: global statistics
/// (mean weight, top-K cutoff) and the retention filter both run over the
/// materialised vector, so the quadratic adjacency build is paid **once**
/// per pruning call instead of once per sub-pass.
pub fn collect_weighted_edges(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
) -> Vec<(u32, u32, f64)> {
    collect_edges(ctx, weigher, |u, v, w| Some((u, v, w)))
}

/// Runs `per_node(node, adjacency)` for every node (including isolated ones,
/// which get an empty adjacency), returning the results indexed by node id.
/// The adjacency is sorted by neighbour id and carries the computed weights.
pub fn node_pass<R, F>(ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher, per_node: F) -> Vec<R>
where
    R: Send,
    F: Fn(u32, &[(u32, f64)]) -> R + Sync,
{
    let n = ctx.total_profiles() as usize;
    let chunks = node_chunks(ctx, n, |scratch, weighted, range| {
        let mut out = Vec::with_capacity(range.len());
        for node in range {
            let node = node as u32;
            scratch.load(ctx, node);
            weighted.clear();
            weighted.extend(
                scratch
                    .iter()
                    .map(|(v, acc)| (v, weigher.weight(ctx, node, v, &acc))),
            );
            out.push(per_node(node, weighted));
        }
        out
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Like [`node_pass`] but restricted to `nodes` (the dirty-neighbourhood
/// entry point of incremental repair): runs `per_node(node, adjacency)` for
/// exactly the listed nodes, returning results aligned with `nodes`. The
/// per-node adjacency is computed on the same dense scratch engine as the
/// full pass, so results are bit-identical to the corresponding slots of
/// [`node_pass`].
pub fn node_pass_subset<R, F>(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
    nodes: &[u32],
    per_node: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(u32, &[(u32, f64)]) -> R + Sync,
{
    let len = nodes.len();
    let chunks = parallel_work_steal(
        len,
        ctx.threads(),
        chunk_len(len),
        || (NodeScratch::new(ctx), Vec::new()),
        |(scratch, weighted): &mut (NodeScratch, Vec<(u32, f64)>), range| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                let node = nodes[i];
                scratch.load(ctx, node);
                weighted.clear();
                weighted.extend(
                    scratch
                        .iter()
                        .map(|(v, acc)| (v, weigher.weight(ctx, node, v, &acc))),
                );
                out.push(per_node(node, weighted));
            }
            out
        },
    );
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Materialises exactly the weighted edges with at least one endpoint in the
/// marked set (the dirty-neighbourhood counterpart of
/// [`collect_weighted_edges`]): each such edge appears once, in canonical
/// owner orientation, sorted ascending by `(u, v)`, with the weight computed
/// from the same accumulation path as the full pass (bit-identical).
///
/// A convenience wrapper for tests and diagnostics — the incremental repair
/// ladder runs on [`collect_accums_touching`] directly (it must patch
/// degrees between accumulation and weighting, and weighs in parallel).
///
/// `nodes` lists the marked node ids and `mask` is the corresponding
/// epoch-stamped membership mask (`mask.contains(n) == nodes.contains(&n)`).
pub fn collect_edges_touching(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
    nodes: &[u32],
    mask: &EpochMask,
) -> Vec<(u32, u32, f64)> {
    collect_accums_touching(ctx, nodes, mask)
        .into_iter()
        .map(|(u, v, acc)| (u, v, weigher.weight(ctx, u, v, &acc)))
        .collect()
}

/// Like [`collect_edges_touching`] but returns the raw accumulators instead
/// of weights: each marked-incident edge once, canonical owner orientation,
/// sorted ascending by `(u, v)`. This is the artefact-stage primitive of
/// the incremental repair ladder — the accumulators are cached per edge so
/// a later global-statistic drift can re-derive the weight (weight =
/// f(accumulator, O(1) snapshot statistics)) without re-traversing any
/// block, and so degree maintenance can diff edge existence *before* any
/// weight is computed.
pub fn collect_accums_touching(
    ctx: &GraphSnapshot,
    nodes: &[u32],
    mask: &EpochMask,
) -> Vec<(u32, u32, EdgeAccum)> {
    let clean = ctx.is_clean_clean();
    let sep = ctx.separator();
    let len = nodes.len();
    let chunks = parallel_work_steal(
        len,
        ctx.threads(),
        chunk_len(len),
        || NodeScratch::new(ctx),
        |scratch: &mut NodeScratch, range| {
            let mut out = Vec::new();
            for i in range {
                let d = nodes[i];
                scratch.load(ctx, d);
                for (v, acc) in scratch.iter() {
                    // Canonical owner orientation: the E1-side endpoint for
                    // clean-clean graphs, the smaller id for dirty ones.
                    let (owner, other) = if clean {
                        if d < sep {
                            (d, v)
                        } else {
                            (v, d)
                        }
                    } else if d < v {
                        (d, v)
                    } else {
                        (v, d)
                    };
                    // Emit from the owner endpoint when it is marked;
                    // otherwise from the marked non-owner (exactly once).
                    if owner != d && mask.contains(owner) {
                        continue;
                    }
                    out.push((owner, other, acc));
                }
            }
            out
        },
    );
    let mut out: Vec<(u32, u32, EdgeAccum)> = Vec::new();
    for c in chunks {
        out.extend(c);
    }
    out.sort_unstable_by_key(|&(u, v, _)| (u, v));
    out
}

/// Enumerates every edge exactly once (u < v), calling `f(u, v, w)` and
/// collecting the `Some` results. Output order is deterministic: ascending
/// `u`, then ascending `v`.
pub fn collect_edges<T, F>(ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, u32, f64) -> Option<T> + Sync,
{
    let clean = ctx.is_clean_clean();
    let chunks = owner_chunks(ctx, |scratch, range| {
        let mut out = Vec::new();
        for u in range {
            scratch.load(ctx, u);
            for (v, acc) in scratch.iter() {
                if !clean && v <= u {
                    continue; // dirty graphs see each edge from both ends
                }
                let w = weigher.weight(ctx, u, v, &acc);
                if let Some(t) = f(u, v, w) {
                    out.push(t);
                }
            }
        }
        out
    });
    let mut out = Vec::new();
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Like [`collect_edges`] but hands the closure the raw [`crate::context::EdgeAccum`] so
/// callers can derive several statistics per edge without re-scanning the
/// adjacency (used by supervised meta-blocking's feature extraction).
pub fn collect_edge_accums<T, F>(ctx: &GraphSnapshot, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, u32, &crate::context::EdgeAccum) -> Option<T> + Sync,
{
    let clean = ctx.is_clean_clean();
    let chunks = owner_chunks(ctx, |scratch, range| {
        let mut out = Vec::new();
        for u in range {
            scratch.load(ctx, u);
            for (v, acc) in scratch.iter() {
                if !clean && v <= u {
                    continue;
                }
                if let Some(t) = f(u, v, &acc) {
                    out.push(t);
                }
            }
        }
        out
    });
    let mut out = Vec::new();
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Folds over every edge exactly once with a per-chunk accumulator, merging
/// chunk accumulators in deterministic order. Chunk geometry is independent
/// of the thread count, so even floating-point folds are bit-identical for
/// any parallelism.
pub fn fold_edges<A, I, F, M>(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, u32, u32, f64) + Sync,
    M: Fn(A, A) -> A,
{
    let clean = ctx.is_clean_clean();
    let chunks = owner_chunks(ctx, |scratch, range| {
        let mut acc = init();
        for u in range {
            scratch.load(ctx, u);
            for (v, a) in scratch.iter() {
                if !clean && v <= u {
                    continue;
                }
                fold(&mut acc, u, v, weigher.weight(ctx, u, v, &a));
            }
        }
        acc
    });
    chunks.into_iter().reduce(merge).unwrap_or_else(init)
}

/// Converts an edge `(u, v)` to the `ProfileId` pair used in results.
#[inline]
pub fn pair(u: u32, v: u32) -> (ProfileId, ProfileId) {
    (ProfileId(u), ProfileId(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn dirty_triangle() -> BlockCollection {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
        ];
        BlockCollection::new(blocks, false, 3, 3)
    }

    #[test]
    fn collect_edges_visits_each_edge_once() {
        let blocks = dirty_triangle();
        let ctx = GraphSnapshot::build(&blocks);
        let edges = collect_edges(&ctx, &WeightingScheme::Cbs, |u, v, w| Some((u, v, w)));
        assert_eq!(
            edges,
            vec![(0, 1, 2.0), (0, 2, 1.0), (1, 2, 1.0)],
            "each undirected edge exactly once, sorted"
        );
    }

    #[test]
    fn node_pass_covers_isolated_nodes() {
        let blocks = BlockCollection::new(
            vec![Block::new("b", ClusterId::GLUE, ids(&[0, 2]), u32::MAX)],
            false,
            4,
            4,
        );
        let ctx = GraphSnapshot::build(&blocks);
        let sizes = node_pass(&ctx, &WeightingScheme::Cbs, |_, adj| adj.len());
        assert_eq!(sizes, vec![1, 0, 1, 0]);
    }

    #[test]
    fn fold_edges_totals_match_collect() {
        let blocks = dirty_triangle();
        let ctx = GraphSnapshot::build(&blocks);
        let (count, sum) = fold_edges(
            &ctx,
            &WeightingScheme::Cbs,
            || (0u64, 0.0f64),
            |acc, _, _, w| {
                acc.0 += 1;
                acc.1 += w;
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        assert_eq!(count, 3);
        assert!((sum - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let blocks = dirty_triangle();
        let ctx1 = GraphSnapshot::build(&blocks).with_threads(1);
        let ctx4 = GraphSnapshot::build(&blocks).with_threads(4);
        let e1 = collect_edges(&ctx1, &WeightingScheme::Arcs, |u, v, w| {
            Some((u, v, w.to_bits()))
        });
        let e4 = collect_edges(&ctx4, &WeightingScheme::Arcs, |u, v, w| {
            Some((u, v, w.to_bits()))
        });
        assert_eq!(e1, e4);
    }

    #[test]
    fn subset_pass_matches_full_pass_slots() {
        let blocks = dirty_triangle();
        let ctx = GraphSnapshot::build(&blocks);
        let full = node_pass(&ctx, &WeightingScheme::Arcs, |n, adj| {
            (
                n,
                adj.iter()
                    .map(|&(v, w)| (v, w.to_bits()))
                    .collect::<Vec<_>>(),
            )
        });
        let subset = node_pass_subset(&ctx, &WeightingScheme::Arcs, &[2, 0], |n, adj| {
            (
                n,
                adj.iter()
                    .map(|&(v, w)| (v, w.to_bits()))
                    .collect::<Vec<_>>(),
            )
        });
        assert_eq!(subset[0], full[2]);
        assert_eq!(subset[1], full[0]);
    }

    #[test]
    fn touching_with_full_mask_is_collect() {
        let blocks = dirty_triangle();
        let ctx = GraphSnapshot::build(&blocks);
        let all: Vec<u32> = (0..3).collect();
        let mut mask = EpochMask::new();
        mask.begin(3);
        mask.mark_all();
        let touching = collect_edges_touching(&ctx, &WeightingScheme::Arcs, &all, &mask);
        let full = collect_weighted_edges(&ctx, &WeightingScheme::Arcs);
        assert_eq!(touching.len(), full.len());
        for (a, b) in touching.iter().zip(&full) {
            assert_eq!((a.0, a.1), (b.0, b.1));
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
    }

    #[test]
    fn touching_with_partial_mask_is_incident_subset() {
        let blocks = dirty_triangle();
        let ctx = GraphSnapshot::build(&blocks);
        let mut mask = EpochMask::new();
        mask.begin(3);
        mask.mark(2);
        let touching = collect_edges_touching(&ctx, &WeightingScheme::Cbs, &[2], &mask);
        let expect: Vec<(u32, u32)> = collect_weighted_edges(&ctx, &WeightingScheme::Cbs)
            .into_iter()
            .filter(|&(u, v, _)| mask.contains(u) || mask.contains(v))
            .map(|(u, v, _)| (u, v))
            .collect();
        let got: Vec<(u32, u32)> = touching.iter().map(|&(u, v, _)| (u, v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn epoch_mask_clears_in_constant_time() {
        let mut mask = EpochMask::new();
        mask.begin(4);
        assert!(mask.mark(2));
        assert!(!mask.mark(2), "already marked this epoch");
        assert!(mask.contains(2) && !mask.contains(1));
        mask.begin(4);
        assert!(!mask.contains(2), "epoch bump unmarks everything");
        mask.mark_all();
        assert!(mask.contains(0) && mask.contains(3));
        mask.begin(6);
        assert!(!mask.contains(0), "mark_all does not leak across epochs");
        assert!(mask.mark(5), "mask grows with the node count");
    }

    #[test]
    fn rank_bits_order_matches_descending_weight() {
        let weights = [-1.5, -0.0, 0.0, 1e-300, 1.0, 1.0000000000000002, 3e7];
        for pair in weights.windows(2) {
            if pair[0] == pair[1] {
                assert_eq!(weight_rank_bits(pair[0]), weight_rank_bits(pair[1]));
            } else {
                assert!(
                    weight_rank_bits(pair[0]) > weight_rank_bits(pair[1]),
                    "lighter edge must rank later: {pair:?}"
                );
            }
        }
        assert_eq!(
            weight_rank_bits(-0.0),
            weight_rank_bits(0.0),
            "batch deciders compare f64s, where -0.0 == 0.0"
        );
    }

    #[test]
    fn weighted_edges_match_collect() {
        let blocks = dirty_triangle();
        let ctx = GraphSnapshot::build(&blocks);
        let direct = collect_weighted_edges(&ctx, &WeightingScheme::Cbs);
        let via_collect = collect_edges(&ctx, &WeightingScheme::Cbs, |u, v, w| Some((u, v, w)));
        assert_eq!(direct, via_collect);
    }
}
