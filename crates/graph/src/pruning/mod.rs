//! Edge-pruning algorithms (§2.2): the four traditional schemes of \[20\].
//!
//! * [`wep`] — Weight Edge Pruning: one global weight threshold.
//! * [`cep`] — Cardinality Edge Pruning: keep the global top-K edges.
//! * [`wnp`] — Weight Node Pruning: per-node weight thresholds, in the
//!   *redefined* (either endpoint) and *reciprocal* (both endpoints)
//!   variants the paper calls wnp₁ and wnp₂.
//! * [`cnp`] — Cardinality Node Pruning: per-node top-k, again redefined
//!   (cnp₁) and reciprocal (cnp₂).
//!
//! [`common`] hosts the parallel passes everything is built from — a
//! per-node adjacency pass, a deterministic edge enumeration, and the fused
//! single-traversal edge materialisation WEP/CEP run on — all executing on
//! the dense scratch-array engine of [`crate::traversal`]. BLAST's own
//! pruning (in `blast-core`) reuses them.

pub mod cep;
pub mod cnp;
pub mod common;
pub mod wep;
pub mod wnp;

pub use cep::Cep;
pub use cnp::Cnp;
pub use wep::Wep;
pub use wnp::Wnp;

/// Whether a node-centric scheme resolves the two-threshold ambiguity of
/// Fig. 7 by requiring one (redefined) or both (reciprocal) endpoints to
/// accept the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeCentricMode {
    /// Retain the edge if it passes *at least one* endpoint (wnp₁ / cnp₁).
    Redefined,
    /// Retain the edge only if it passes *both* endpoints (wnp₂ / cnp₂).
    Reciprocal,
}

impl NodeCentricMode {
    /// How many of the two per-endpoint acceptances an edge needs: the
    /// retention threshold of the incremental CNP containment counters
    /// (pair retained ⟺ listings ≥ this).
    #[inline]
    pub fn required_listings(&self) -> u8 {
        match self {
            NodeCentricMode::Redefined => 1,
            NodeCentricMode::Reciprocal => 2,
        }
    }
}
