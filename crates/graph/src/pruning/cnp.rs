//! Cardinality Node Pruning: per-node top-k retention (§2.2, \[20\]).
//!
//! k defaults to the average number of block assignments per profile,
//! k = max(1, ⌊Σ_b |b| / |E|⌋) — the convention of the reference
//! implementation. cnp₁ (redefined) keeps an edge in the top-k of either
//! endpoint; cnp₂ (reciprocal) requires both.

use crate::context::GraphSnapshot;
use crate::pruning::common::node_pass;
use crate::pruning::NodeCentricMode;
use crate::retained::RetainedPairs;
use crate::weights::EdgeWeigher;
use blast_datamodel::entity::ProfileId;
use std::collections::BinaryHeap;

/// A heap entry ordered so that the heap's *maximum* is the candidate to
/// evict first: lower weight is "greater", ties broken by *higher*
/// neighbour id (the retained ranking is weight desc, id asc).
struct Evictee(u32, f64);

impl PartialEq for Evictee {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Evictee {}
impl PartialOrd for Evictee {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Evictee {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .1
            .partial_cmp(&self.1)
            .expect("no NaN weights")
            .then(self.0.cmp(&other.0))
    }
}

/// The top-k neighbours of one adjacency under the (weight desc, id asc)
/// ranking, via a bounded binary heap: O(d log k) instead of the O(d log d)
/// full sort, which matters on hub nodes whose degree dwarfs k. Exactly the
/// first k entries of the fully sorted ranking, boundary ties included.
pub fn top_k_neighbours(adj: &[(u32, f64)], k: usize) -> Vec<u32> {
    if k == 0 || adj.is_empty() {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Evictee> = BinaryHeap::with_capacity(k + 1);
    for &(v, w) in adj {
        heap.push(Evictee(v, w));
        if heap.len() > k {
            heap.pop();
        }
    }
    // Ascending `Evictee` order is best-first: weight desc, id asc.
    heap.into_sorted_vec().into_iter().map(|e| e.0).collect()
}

/// Cardinality Node Pruning (per-node top-k).
#[derive(Debug, Clone, Copy)]
pub struct Cnp {
    /// How the two-list ambiguity is resolved.
    pub mode: NodeCentricMode,
    /// Optional explicit k; when `None`, k = max(1, ⌊Σ|b| / |E|⌋).
    pub k: Option<usize>,
}

impl Cnp {
    /// cnp₁ with the default k.
    pub fn redefined() -> Self {
        Self {
            mode: NodeCentricMode::Redefined,
            k: None,
        }
    }

    /// cnp₂ with the default k.
    pub fn reciprocal() -> Self {
        Self {
            mode: NodeCentricMode::Reciprocal,
            k: None,
        }
    }

    /// Overrides k.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// The per-node retention budget for this graph.
    pub fn budget(&self, ctx: &GraphSnapshot) -> usize {
        self.k.unwrap_or_else(|| {
            let profiles = ctx.total_profiles().max(1) as u64;
            ((ctx.index().total_assignments() / profiles) as usize).max(1)
        })
    }

    /// The top-k neighbour list of every node (weight desc, id asc).
    fn top_k_lists(
        &self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        k: usize,
    ) -> Vec<Vec<u32>> {
        node_pass(ctx, weigher, |_, adj| top_k_neighbours(adj, k))
    }

    /// The top-k neighbour lists derived from an already-materialised
    /// weighted edge list in canonical `(u, v)` ascending order: each edge
    /// feeds both endpoints' rankings. The ranking's total order makes the
    /// lists independent of the feeding order, so they equal the adjacency
    /// pass exactly.
    pub fn lists_from_edges(n_nodes: usize, k: usize, edges: &[(u32, u32, f64)]) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_nodes];
        for &(u, v, w) in edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        adj.iter().map(|a| top_k_neighbours(a, k)).collect()
    }

    /// Combines per-node top-k lists into the retained comparisons under
    /// this variant's mode. Shared by [`Cnp::prune`], the from-edges sweep
    /// path and incremental repair.
    pub fn retained_from_lists(&self, lists: &[Vec<u32>]) -> RetainedPairs {
        let mut pairs: Vec<(ProfileId, ProfileId)> = Vec::new();
        match self.mode {
            NodeCentricMode::Redefined => {
                // Union of directed retentions.
                for (u, list) in lists.iter().enumerate() {
                    for &v in list {
                        pairs.push((ProfileId(u as u32), ProfileId(v)));
                    }
                }
            }
            NodeCentricMode::Reciprocal => {
                // Edge kept iff each endpoint lists the other.
                for (u, list) in lists.iter().enumerate() {
                    let u = u as u32;
                    for &v in list {
                        if v > u && lists[v as usize].contains(&u) {
                            pairs.push((ProfileId(u), ProfileId(v)));
                        }
                    }
                }
            }
        }
        RetainedPairs::new(pairs)
    }

    /// Prunes the graph.
    pub fn prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        let k = self.budget(ctx);
        let lists = self.top_k_lists(ctx, weigher, k);
        self.retained_from_lists(&lists)
    }

    /// Pruning over a materialised edge list (`k` from [`Cnp::budget`]).
    pub fn prune_edges(
        &self,
        n_nodes: usize,
        k: usize,
        edges: &[(u32, u32, f64)],
    ) -> RetainedPairs {
        self.retained_from_lists(&Self::lists_from_edges(n_nodes, k, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// CBS weights: (0,1)=3, (0,2)=2, (0,3)=1, (1,2)=1 … built from stacked
    /// pair blocks plus one big block.
    fn blocks() -> BlockCollection {
        let b = vec![
            Block::new("all", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX),
            Block::new("p01a", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("p01b", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("p02", ClusterId::GLUE, ids(&[0, 2]), u32::MAX),
        ];
        BlockCollection::new(b, false, 4, 4)
    }

    #[test]
    fn redefined_k1_keeps_best_edge_per_node() {
        let b = blocks();
        let ctx = GraphSnapshot::build(&b);
        let retained = Cnp::redefined()
            .with_k(1)
            .prune(&ctx, &WeightingScheme::Cbs);
        // node 0 → 1 (w=3); node 1 → 0; node 2 → 0 (w=2); node 3 → 0 (w=1,
        // ties with 1,2 at w=1 broken by id → 0). Union: (0,1),(0,2),(0,3).
        assert_eq!(retained.len(), 3);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
        assert!(retained.contains(ProfileId(0), ProfileId(2)));
        assert!(retained.contains(ProfileId(0), ProfileId(3)));
    }

    #[test]
    fn reciprocal_k1_requires_mutual_top() {
        let b = blocks();
        let ctx = GraphSnapshot::build(&b);
        let retained = Cnp::reciprocal()
            .with_k(1)
            .prune(&ctx, &WeightingScheme::Cbs);
        // Only (0,1) is mutual: 0's best is 1 and 1's best is 0.
        assert_eq!(retained.len(), 1);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn reciprocal_subset_of_redefined() {
        let b = blocks();
        let ctx = GraphSnapshot::build(&b);
        for k in 1..4 {
            let r1 = Cnp::redefined()
                .with_k(k)
                .prune(&ctx, &WeightingScheme::Cbs);
            let r2 = Cnp::reciprocal()
                .with_k(k)
                .prune(&ctx, &WeightingScheme::Cbs);
            assert!(r2.len() <= r1.len());
            for (a, bb) in r2.iter() {
                assert!(r1.contains(a, bb));
            }
        }
    }

    #[test]
    fn default_budget_is_mean_assignments() {
        let b = blocks();
        let ctx = GraphSnapshot::build(&b);
        // assignments = 4 + 2 + 2 + 2 = 10, profiles = 4 → k = 2.
        assert_eq!(Cnp::redefined().budget(&ctx), 2);
    }

    /// The reference ranking the bounded heap must reproduce exactly.
    fn reference_top_k(adj: &[(u32, f64)], k: usize) -> Vec<u32> {
        let mut ranked: Vec<(u32, f64)> = adj.to_vec();
        ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("no NaN weights")
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked.into_iter().map(|(v, _)| v).collect()
    }

    /// Tie-break stability: with many equal weights at the k-boundary, the
    /// bounded heap must keep exactly the lowest-id tied neighbours, in the
    /// same order as the full sort-and-truncate it replaced.
    #[test]
    fn bounded_heap_tie_breaks_match_full_sort() {
        // 8 neighbours, weights 2,1,1,1,1,1,1,3 — the k=3 boundary cuts
        // through a six-way tie at weight 1.
        let adj: Vec<(u32, f64)> = vec![
            (10, 2.0),
            (4, 1.0),
            (9, 1.0),
            (2, 1.0),
            (7, 1.0),
            (3, 1.0),
            (8, 1.0),
            (5, 3.0),
        ];
        for k in 0..=adj.len() + 1 {
            assert_eq!(
                top_k_neighbours(&adj, k),
                reference_top_k(&adj, k),
                "k = {k}"
            );
        }
        // k=3 keeps the two heavy edges plus the lowest-id weight-1 tie.
        assert_eq!(top_k_neighbours(&adj, 3), vec![5, 10, 2]);
    }

    mod heap_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Bounded heap ≡ full sort-and-truncate on random adjacencies;
            /// small integer weights force plenty of ties.
            #[test]
            fn prop_bounded_heap_matches_sort(
                raw in proptest::collection::vec((0u32..64, 0u32..5), 0..40)
            ) {
                // Dedup neighbour ids (an adjacency lists each once).
                let mut seen = std::collections::BTreeSet::new();
                let adj: Vec<(u32, f64)> = raw
                    .into_iter()
                    .filter(|(v, _)| seen.insert(*v))
                    .map(|(v, w)| (v, w as f64))
                    .collect();
                for k in [0usize, 1, 2, 3, 5, 100] {
                    prop_assert_eq!(top_k_neighbours(&adj, k), reference_top_k(&adj, k));
                }
            }
        }
    }

    #[test]
    fn prune_edges_matches_prune() {
        use crate::pruning::common::collect_weighted_edges;
        let b = blocks();
        let ctx = GraphSnapshot::build(&b);
        let edges = collect_weighted_edges(&ctx, &WeightingScheme::Cbs);
        for cnp in [Cnp::redefined(), Cnp::reciprocal()] {
            for k in 1..4 {
                let cnp = cnp.with_k(k);
                let a = cnp.prune(&ctx, &WeightingScheme::Cbs);
                let b2 = cnp.prune_edges(ctx.total_profiles() as usize, k, &edges);
                assert_eq!(a, b2);
            }
        }
    }

    #[test]
    fn large_k_keeps_whole_graph() {
        let b = blocks();
        let ctx = GraphSnapshot::build(&b);
        let retained = Cnp::redefined()
            .with_k(10)
            .prune(&ctx, &WeightingScheme::Cbs);
        // Graph has edges (0,1),(0,2),(0,3),(1,2),(1,3),(2,3) from "all"
        // plus the pair blocks → complete graph on 4 nodes.
        assert_eq!(retained.len(), 6);
    }
}
