//! Cardinality Node Pruning: per-node top-k retention (§2.2, \[20\]).
//!
//! k defaults to the average number of block assignments per profile,
//! k = max(1, ⌊Σ_b |b| / |E|⌋) — the convention of the reference
//! implementation. cnp₁ (redefined) keeps an edge in the top-k of either
//! endpoint; cnp₂ (reciprocal) requires both.

use crate::context::GraphContext;
use crate::pruning::common::node_pass;
use crate::pruning::NodeCentricMode;
use crate::retained::RetainedPairs;
use crate::weights::EdgeWeigher;
use blast_datamodel::entity::ProfileId;

/// Cardinality Node Pruning (per-node top-k).
#[derive(Debug, Clone, Copy)]
pub struct Cnp {
    /// How the two-list ambiguity is resolved.
    pub mode: NodeCentricMode,
    /// Optional explicit k; when `None`, k = max(1, ⌊Σ|b| / |E|⌋).
    pub k: Option<usize>,
}

impl Cnp {
    /// cnp₁ with the default k.
    pub fn redefined() -> Self {
        Self {
            mode: NodeCentricMode::Redefined,
            k: None,
        }
    }

    /// cnp₂ with the default k.
    pub fn reciprocal() -> Self {
        Self {
            mode: NodeCentricMode::Reciprocal,
            k: None,
        }
    }

    /// Overrides k.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// The per-node retention budget for this graph.
    pub fn budget(&self, ctx: &GraphContext<'_>) -> usize {
        self.k.unwrap_or_else(|| {
            let profiles = ctx.total_profiles().max(1) as u64;
            ((ctx.index().total_assignments() / profiles) as usize).max(1)
        })
    }

    /// The top-k neighbour list of every node (weight desc, id asc).
    fn top_k_lists(
        &self,
        ctx: &GraphContext<'_>,
        weigher: &dyn EdgeWeigher,
        k: usize,
    ) -> Vec<Vec<u32>> {
        node_pass(ctx, weigher, |_, adj| {
            if adj.is_empty() {
                return Vec::new();
            }
            let mut ranked: Vec<(u32, f64)> = adj.to_vec();
            // Weight descending; neighbour id ascending for determinism.
            ranked.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("no NaN weights")
                    .then(a.0.cmp(&b.0))
            });
            ranked.truncate(k);
            ranked.into_iter().map(|(v, _)| v).collect()
        })
    }

    /// Prunes the graph.
    pub fn prune(&self, ctx: &GraphContext<'_>, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        let k = self.budget(ctx);
        let lists = self.top_k_lists(ctx, weigher, k);
        let mut pairs: Vec<(ProfileId, ProfileId)> = Vec::new();
        match self.mode {
            NodeCentricMode::Redefined => {
                // Union of directed retentions.
                for (u, list) in lists.iter().enumerate() {
                    for &v in list {
                        pairs.push((ProfileId(u as u32), ProfileId(v)));
                    }
                }
            }
            NodeCentricMode::Reciprocal => {
                // Edge kept iff each endpoint lists the other.
                for (u, list) in lists.iter().enumerate() {
                    let u = u as u32;
                    for &v in list {
                        if v > u && lists[v as usize].contains(&u) {
                            pairs.push((ProfileId(u), ProfileId(v)));
                        }
                    }
                }
            }
        }
        RetainedPairs::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// CBS weights: (0,1)=3, (0,2)=2, (0,3)=1, (1,2)=1 … built from stacked
    /// pair blocks plus one big block.
    fn blocks() -> BlockCollection {
        let b = vec![
            Block::new("all", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX),
            Block::new("p01a", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("p01b", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("p02", ClusterId::GLUE, ids(&[0, 2]), u32::MAX),
        ];
        BlockCollection::new(b, false, 4, 4)
    }

    #[test]
    fn redefined_k1_keeps_best_edge_per_node() {
        let b = blocks();
        let ctx = GraphContext::new(&b);
        let retained = Cnp::redefined()
            .with_k(1)
            .prune(&ctx, &WeightingScheme::Cbs);
        // node 0 → 1 (w=3); node 1 → 0; node 2 → 0 (w=2); node 3 → 0 (w=1,
        // ties with 1,2 at w=1 broken by id → 0). Union: (0,1),(0,2),(0,3).
        assert_eq!(retained.len(), 3);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
        assert!(retained.contains(ProfileId(0), ProfileId(2)));
        assert!(retained.contains(ProfileId(0), ProfileId(3)));
    }

    #[test]
    fn reciprocal_k1_requires_mutual_top() {
        let b = blocks();
        let ctx = GraphContext::new(&b);
        let retained = Cnp::reciprocal()
            .with_k(1)
            .prune(&ctx, &WeightingScheme::Cbs);
        // Only (0,1) is mutual: 0's best is 1 and 1's best is 0.
        assert_eq!(retained.len(), 1);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn reciprocal_subset_of_redefined() {
        let b = blocks();
        let ctx = GraphContext::new(&b);
        for k in 1..4 {
            let r1 = Cnp::redefined()
                .with_k(k)
                .prune(&ctx, &WeightingScheme::Cbs);
            let r2 = Cnp::reciprocal()
                .with_k(k)
                .prune(&ctx, &WeightingScheme::Cbs);
            assert!(r2.len() <= r1.len());
            for (a, bb) in r2.iter() {
                assert!(r1.contains(a, bb));
            }
        }
    }

    #[test]
    fn default_budget_is_mean_assignments() {
        let b = blocks();
        let ctx = GraphContext::new(&b);
        // assignments = 4 + 2 + 2 + 2 = 10, profiles = 4 → k = 2.
        assert_eq!(Cnp::redefined().budget(&ctx), 2);
    }

    #[test]
    fn large_k_keeps_whole_graph() {
        let b = blocks();
        let ctx = GraphContext::new(&b);
        let retained = Cnp::redefined()
            .with_k(10)
            .prune(&ctx, &WeightingScheme::Cbs);
        // Graph has edges (0,1),(0,2),(0,3),(1,2),(1,3),(2,3) from "all"
        // plus the pair blocks → complete graph on 4 nodes.
        assert_eq!(retained.len(), 6);
    }
}
