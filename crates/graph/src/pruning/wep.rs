//! Weight Edge Pruning: discard every edge below a single global threshold
//! Θ, the mean edge weight (§2.2, \[20\]).

use crate::context::GraphContext;
use crate::pruning::common::{collect_edges, fold_edges, pair};
use crate::retained::RetainedPairs;
use crate::weights::EdgeWeigher;

/// Weight Edge Pruning with the mean-weight global threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wep;

impl Wep {
    /// Prunes the graph, retaining edges with weight ≥ Θ (mean weight).
    pub fn prune(&self, ctx: &GraphContext<'_>, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        let (count, sum) = fold_edges(
            ctx,
            weigher,
            || (0u64, 0.0f64),
            |acc, _, _, w| {
                acc.0 += 1;
                acc.1 += w;
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        if count == 0 {
            return RetainedPairs::default();
        }
        let theta = sum / count as f64;
        let pairs = collect_edges(ctx, weigher, |u, v, w| (w >= theta).then(|| pair(u, v)));
        RetainedPairs::new(pairs)
    }

    /// The global threshold this scheme would use (diagnostics).
    pub fn threshold(&self, ctx: &GraphContext<'_>, weigher: &dyn EdgeWeigher) -> Option<f64> {
        let (count, sum) = fold_edges(
            ctx,
            weigher,
            || (0u64, 0.0f64),
            |acc, _, _, w| {
                acc.0 += 1;
                acc.1 += w;
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        (count > 0).then(|| sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// CBS weights: (0,1) = 3, (0,2) = 1, (1,2) = 1 → Θ = 5/3.
    fn blocks() -> BlockCollection {
        let b = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
        ];
        BlockCollection::new(b, false, 3, 3)
    }

    #[test]
    fn retains_edges_at_or_above_mean() {
        let blocks = blocks();
        let ctx = GraphContext::new(&blocks);
        let retained = Wep.prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 1);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn threshold_is_mean() {
        let blocks = blocks();
        let ctx = GraphContext::new(&blocks);
        let theta = Wep.threshold(&ctx, &WeightingScheme::Cbs).unwrap();
        assert!((theta - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let blocks = BlockCollection::new(vec![], false, 3, 3);
        let ctx = GraphContext::new(&blocks);
        assert!(Wep.prune(&ctx, &WeightingScheme::Cbs).is_empty());
        assert!(Wep.threshold(&ctx, &WeightingScheme::Cbs).is_none());
    }

    #[test]
    fn uniform_weights_retain_everything() {
        let b = vec![Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX)];
        let blocks = BlockCollection::new(b, false, 3, 3);
        let ctx = GraphContext::new(&blocks);
        let retained = Wep.prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 3); // all weights equal the mean
    }
}
