//! Weight Edge Pruning: discard every edge below a single global threshold
//! Θ, the mean edge weight (§2.2, \[20\]).
//!
//! Fused pass: the weighted edge list is materialised **once** (a single
//! adjacency traversal via [`collect_weighted_edges`]); the global mean and
//! the retention filter both run over that in-memory list. The old engine
//! re-ran the full quadratic traversal twice (`fold_edges` then
//! `collect_edges`). The mean's numerator is accumulated **exactly**
//! ([`ExactSum`]), so Θ depends only on the edge *multiset* — bit-identical
//! for every thread count, every traversal order, and (the point) for a
//! running sum maintained by the incremental decision stage via
//! add/remove deltas instead of a per-commit re-scan.

use crate::context::GraphSnapshot;
use crate::exact_sum::ExactSum;
use crate::pruning::common::{collect_weighted_edges, pair};
use crate::retained::RetainedPairs;
use crate::weights::EdgeWeigher;

/// Weight Edge Pruning with the mean-weight global threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wep;

impl Wep {
    /// Θ from an exactly accumulated weight total and the live edge count
    /// (`None` when the graph has no edges) — the **single source of the
    /// threshold** for the batch passes here and for the incremental
    /// decision stage's delta-maintained running sum: both feed the same
    /// exact accumulator, so they agree bitwise by construction.
    pub fn mean_from_sum(sum: &ExactSum, edges: usize) -> Option<f64> {
        if edges == 0 {
            return None;
        }
        Some(sum.round() / edges as f64)
    }

    /// The mean weight of a materialised edge list (`None` when empty).
    fn mean_weight(edges: &[(u32, u32, f64)]) -> Option<f64> {
        let sum = ExactSum::of(edges.iter().map(|&(_, _, w)| w));
        Self::mean_from_sum(&sum, edges.len())
    }

    /// Whether an edge of weight `w` survives against threshold Θ — the
    /// flip-emitting decision primitive shared with incremental repair.
    #[inline]
    pub fn retains(w: f64, theta: f64) -> bool {
        w >= theta
    }

    /// Prunes the graph, retaining edges with weight ≥ Θ (mean weight).
    pub fn prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        Self::prune_edges(&collect_weighted_edges(ctx, weigher))
    }

    /// The retention stage alone, over an already-materialised weighted edge
    /// list in canonical `(u, v)` ascending order. Callers that keep the
    /// edge list around — scheme × pruning sweeps, incremental repair —
    /// reuse it here instead of paying the adjacency traversal again; the
    /// mean's numerator is accumulated exactly, so Θ is bit-identical to
    /// [`Wep::prune`] — and to the incremental path's running sum.
    pub fn prune_edges(edges: &[(u32, u32, f64)]) -> RetainedPairs {
        let Some(theta) = Self::mean_weight(edges) else {
            return RetainedPairs::default();
        };
        let pairs = edges
            .iter()
            .filter(|&&(_, _, w)| Self::retains(w, theta))
            .map(|&(u, v, _)| pair(u, v))
            .collect();
        RetainedPairs::new(pairs)
    }

    /// The global threshold this scheme would use (diagnostics).
    pub fn threshold(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> Option<f64> {
        Self::mean_weight(&collect_weighted_edges(ctx, weigher))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// CBS weights: (0,1) = 3, (0,2) = 1, (1,2) = 1 → Θ = 5/3.
    fn blocks() -> BlockCollection {
        let b = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
        ];
        BlockCollection::new(b, false, 3, 3)
    }

    #[test]
    fn retains_edges_at_or_above_mean() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        let retained = Wep.prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 1);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn threshold_is_mean() {
        let blocks = blocks();
        let ctx = GraphSnapshot::build(&blocks);
        let theta = Wep.threshold(&ctx, &WeightingScheme::Cbs).unwrap();
        assert!((theta - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let blocks = BlockCollection::new(vec![], false, 3, 3);
        let ctx = GraphSnapshot::build(&blocks);
        assert!(Wep.prune(&ctx, &WeightingScheme::Cbs).is_empty());
        assert!(Wep.threshold(&ctx, &WeightingScheme::Cbs).is_none());
    }

    #[test]
    fn uniform_weights_retain_everything() {
        let b = vec![Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX)];
        let blocks = BlockCollection::new(b, false, 3, 3);
        let ctx = GraphSnapshot::build(&blocks);
        let retained = Wep.prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(retained.len(), 3); // all weights equal the mean
    }
}
