//! High-level driver for traditional (unsupervised, schema-agnostic)
//! meta-blocking: pick a weighting scheme and a pruning algorithm, get the
//! restructured comparisons.

use crate::context::GraphSnapshot;
use crate::pruning::{Cep, Cnp, Wep, Wnp};
use crate::retained::RetainedPairs;
use crate::weights::{EdgeWeigher, WeightingScheme};
use blast_blocking::collection::BlockCollection;

/// The pruning algorithms of §2.2, with the paper's labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningAlgorithm {
    /// Weight Edge Pruning (global mean threshold).
    Wep,
    /// Cardinality Edge Pruning (global top-K).
    Cep,
    /// Redefined WNP — the paper's wnp₁.
    Wnp1,
    /// Reciprocal WNP — the paper's wnp₂.
    Wnp2,
    /// Redefined CNP — the paper's cnp₁.
    Cnp1,
    /// Reciprocal CNP — the paper's cnp₂.
    Cnp2,
}

impl PruningAlgorithm {
    /// All six algorithms.
    pub const ALL: [PruningAlgorithm; 6] = [
        PruningAlgorithm::Wep,
        PruningAlgorithm::Cep,
        PruningAlgorithm::Wnp1,
        PruningAlgorithm::Wnp2,
        PruningAlgorithm::Cnp1,
        PruningAlgorithm::Cnp2,
    ];

    /// The paper's label for this algorithm.
    pub fn label(&self) -> &'static str {
        match self {
            PruningAlgorithm::Wep => "wep",
            PruningAlgorithm::Cep => "cep",
            PruningAlgorithm::Wnp1 => "wnp1",
            PruningAlgorithm::Wnp2 => "wnp2",
            PruningAlgorithm::Cnp1 => "cnp1",
            PruningAlgorithm::Cnp2 => "cnp2",
        }
    }

    /// Runs this pruning on an already-built graph context.
    pub fn prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        match self {
            PruningAlgorithm::Wep => Wep.prune(ctx, weigher),
            PruningAlgorithm::Cep => Cep::new().prune(ctx, weigher),
            PruningAlgorithm::Wnp1 => Wnp::redefined().prune(ctx, weigher),
            PruningAlgorithm::Wnp2 => Wnp::reciprocal().prune(ctx, weigher),
            PruningAlgorithm::Cnp1 => Cnp::redefined().prune(ctx, weigher),
            PruningAlgorithm::Cnp2 => Cnp::reciprocal().prune(ctx, weigher),
        }
    }

    /// Runs this pruning over an **already-materialised** weighted edge list
    /// (canonical `(u, v)` ascending order, e.g. from
    /// [`crate::pruning::common::collect_weighted_edges`]). The context is
    /// consulted only for the cardinality budgets (CEP's K, CNP's k) and the
    /// node count — the quadratic adjacency traversal is *not* repeated, so
    /// sweeps over several prunings of the same weighted graph pay the
    /// materialisation once. Results are identical to
    /// [`PruningAlgorithm::prune`].
    pub fn prune_edges(&self, ctx: &GraphSnapshot, edges: &[(u32, u32, f64)]) -> RetainedPairs {
        let n = ctx.total_profiles() as usize;
        match self {
            PruningAlgorithm::Wep => Wep::prune_edges(edges),
            PruningAlgorithm::Cep => Cep::prune_edges(Cep::new().budget(ctx), edges),
            PruningAlgorithm::Wnp1 | PruningAlgorithm::Wnp2 => {
                let wnp = if *self == PruningAlgorithm::Wnp1 {
                    Wnp::redefined()
                } else {
                    Wnp::reciprocal()
                };
                wnp.prune_edges(&Wnp::thresholds_from_edges(n, edges), edges)
            }
            PruningAlgorithm::Cnp1 | PruningAlgorithm::Cnp2 => {
                let cnp = if *self == PruningAlgorithm::Cnp1 {
                    Cnp::redefined()
                } else {
                    Cnp::reciprocal()
                };
                cnp.prune_edges(n, cnp.budget(ctx), edges)
            }
        }
    }
}

/// Traditional graph-based meta-blocking: weighting scheme × pruning
/// algorithm.
#[derive(Debug, Clone, Copy)]
pub struct MetaBlocker {
    /// Edge-weighting scheme.
    pub scheme: WeightingScheme,
    /// Pruning algorithm.
    pub algorithm: PruningAlgorithm,
}

impl MetaBlocker {
    /// Creates a meta-blocker.
    pub fn new(scheme: WeightingScheme, algorithm: PruningAlgorithm) -> Self {
        Self { scheme, algorithm }
    }

    /// Restructures `blocks`, returning the retained comparisons.
    pub fn run(&self, blocks: &BlockCollection) -> RetainedPairs {
        let mut ctx = GraphSnapshot::build(blocks);
        if self.scheme.requires_degrees() {
            ctx.ensure_degrees();
        }
        self.algorithm.prune(&ctx, &self.scheme)
    }

    /// Restructures `blocks` with a custom weigher (used by `blast-core` for
    /// its χ²·entropy weighting under traditional pruning — the
    /// "cnp₁ χ²ₕ"/"cnp₂ χ²ₕ" rows of Tables 4–5).
    pub fn run_with_weigher(
        blocks: &BlockCollection,
        weigher: &dyn EdgeWeigher,
        algorithm: PruningAlgorithm,
    ) -> RetainedPairs {
        let mut ctx = GraphSnapshot::build(blocks);
        if weigher.requires_degrees() {
            ctx.ensure_degrees();
        }
        algorithm.prune(&ctx, weigher)
    }

    /// Like [`MetaBlocker::run_with_weigher`] but on a prepared context
    /// (lets callers attach block entropies first).
    pub fn prune_context(
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        algorithm: PruningAlgorithm,
    ) -> RetainedPairs {
        algorithm.prune(ctx, weigher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn blocks() -> BlockCollection {
        let b = vec![
            Block::new("all", ClusterId::GLUE, ids(&[0, 1, 2, 3]), 2),
            Block::new("p02a", ClusterId::GLUE, ids(&[0, 2]), 2),
            Block::new("p02b", ClusterId::GLUE, ids(&[0, 2]), 2),
            Block::new("p13", ClusterId::GLUE, ids(&[1, 3]), 2),
        ];
        BlockCollection::new(b, true, 2, 4)
    }

    #[test]
    fn every_combination_runs() {
        let blocks = blocks();
        for scheme in WeightingScheme::ALL {
            for algorithm in PruningAlgorithm::ALL {
                let retained = MetaBlocker::new(scheme, algorithm).run(&blocks);
                // Something always survives, and one of the two heavy
                // matching edges is always among the survivors.
                assert!(
                    retained.contains(ProfileId(0), ProfileId(2))
                        || retained.contains(ProfileId(1), ProfileId(3)),
                    "{} + {} lost both heavy edges",
                    scheme.name(),
                    algorithm.label()
                );
                // And none invents pairs outside the graph.
                for (a, b) in retained.iter() {
                    assert!(a.0 < 2 && b.0 >= 2, "clean-clean pairs cross the separator");
                }
            }
        }
    }

    #[test]
    fn cbs_wnp_keeps_heavy_matching_edges() {
        let blocks = blocks();
        for algorithm in [PruningAlgorithm::Wnp1, PruningAlgorithm::Wnp2] {
            let retained = MetaBlocker::new(WeightingScheme::Cbs, algorithm).run(&blocks);
            assert!(retained.contains(ProfileId(0), ProfileId(2)));
            assert!(retained.contains(ProfileId(1), ProfileId(3)));
        }
    }

    #[test]
    fn pruning_reduces_comparisons() {
        let blocks = blocks();
        let full_edges = 4; // (0,2),(0,3),(1,2),(1,3)
        let retained = MetaBlocker::new(WeightingScheme::Cbs, PruningAlgorithm::Wnp2).run(&blocks);
        assert!(retained.len() < full_edges);
    }

    /// The from-edges path must reproduce the traversal path exactly for
    /// every scheme × pruning combination — WEP's sequential mean, CEP's
    /// tie-break, WNP's per-node means and CNP's top-k lists included.
    #[test]
    fn prune_edges_matches_prune_for_all_combinations() {
        use crate::pruning::common::collect_weighted_edges;
        let blocks = blocks();
        for scheme in WeightingScheme::ALL {
            let mut ctx = GraphSnapshot::build(&blocks);
            if scheme.requires_degrees() {
                ctx.ensure_degrees();
            }
            let edges = collect_weighted_edges(&ctx, &scheme);
            for algorithm in PruningAlgorithm::ALL {
                let direct = algorithm.prune(&ctx, &scheme);
                let from_edges = algorithm.prune_edges(&ctx, &edges);
                assert_eq!(
                    direct,
                    from_edges,
                    "{} + {}",
                    scheme.name(),
                    algorithm.label()
                );
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PruningAlgorithm::Wnp1.label(), "wnp1");
        assert_eq!(PruningAlgorithm::Cnp2.label(), "cnp2");
    }
}
