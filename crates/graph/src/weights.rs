//! Traditional edge-weighting schemes (§4.1.1, from \[20\]).
//!
//! | scheme | weight of edge (u,v) |
//! |--------|----------------------|
//! | CBS    | `|B_uv|` — number of shared blocks |
//! | ECBS   | `|B_uv| · ln(|B|/|B_u|) · ln(|B|/|B_v|)` |
//! | JS     | `|B_uv| / (|B_u| + |B_v| − |B_uv|)` |
//! | EJS    | `JS · ln(|E_G|/deg(u)) · ln(|E_G|/deg(v))` |
//! | ARCS   | `Σ_{b ∈ B_uv} 1/‖b‖` |
//!
//! `|B_x|` is the number of blocks containing x, `|B|` the total block
//! count, `|E_G|` the number of graph edges and `deg(x)` the node degree.

use crate::context::{EdgeAccum, GraphSnapshot};

/// The *global* graph statistics a weighting formula reads besides the
/// per-edge accumulator. Incremental repair uses this to decide how far a
/// mutation's dirtiness propagates: a scheme reading only the accumulator
/// (CBS, ARCS) is repaired from the mutated blocks alone, one reading
/// per-node block counts (JS) additionally dirties the neighbourhoods of
/// nodes whose block list changed, and one reading the total block count
/// (ECBS, χ²) promotes any commit that moved |B| to the repair ladder's
/// *reweigh* tier: every live edge's weight is re-derived from its cached
/// accumulator and the new |B| (see the factored-weight contract on
/// [`EdgeWeigher`]), without re-traversing a single block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightDeps {
    /// Reads |B_u| / |B_v| (the per-node block counts).
    pub node_blocks: bool,
    /// Reads |B| (the total block count).
    pub total_blocks: bool,
}

impl WeightDeps {
    /// Accumulator-only weighting (CBS, ARCS).
    pub const NONE: WeightDeps = WeightDeps {
        node_blocks: false,
        total_blocks: false,
    };
    /// Reads the per-node block counts but not |B| (JS).
    pub const NODE_BLOCKS: WeightDeps = WeightDeps {
        node_blocks: true,
        total_blocks: false,
    };
    /// Reads everything — the conservative default for custom weighers.
    pub const ALL: WeightDeps = WeightDeps {
        node_blocks: true,
        total_blocks: true,
    };
}

/// Computes the weight of one edge from its accumulator and the graph
/// context. Implemented by the five traditional schemes here and by
/// `blast-core`'s χ²·entropy weigher.
///
/// ## The factored-weight contract
///
/// A weight must be a **pure function of the per-edge accumulator plus
/// O(1) snapshot statistics** — the globals (|B|, |E_G|) and the per-node
/// values (|B_u|, deg(u)) read through `ctx`. This factoring into
/// *(local components, global scalars)* is what the incremental repair
/// ladder's reweigh tier relies on: when only a global scalar drifts, every
/// clean edge's weight is re-derived from its **cached** accumulator and
/// the patched snapshot through this very method — no block is traversed,
/// and the result is bit-identical to a batch pass because the inputs are.
/// Implementations must not read anything commit-order-dependent.
pub trait EdgeWeigher: Sync {
    /// The weight of edge (u, v).
    fn weight(&self, ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64;

    /// Whether [`GraphSnapshot::ensure_degrees`] must run before weighting.
    fn requires_degrees(&self) -> bool {
        false
    }

    /// The global statistics this weigher's formula reads (drives the
    /// dirtiness propagation of incremental repair). The default is the
    /// conservative [`WeightDeps::ALL`], which is always sound: unknown
    /// weighers fall back to full re-weighting when global statistics move.
    fn global_deps(&self) -> WeightDeps {
        WeightDeps::ALL
    }

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The five traditional weighting schemes of graph-based meta-blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightingScheme {
    /// Aggregate Reciprocal Comparisons: Σ 1/‖b‖ over shared blocks.
    Arcs,
    /// Common Blocks: |B_uv|.
    Cbs,
    /// Enhanced Common Blocks: CBS damped by block-list sizes.
    Ecbs,
    /// Jaccard of the two block lists.
    Js,
    /// Enhanced Jaccard: JS damped by node degrees.
    Ejs,
}

impl WeightingScheme {
    /// All five schemes, in the order the paper reports them.
    pub const ALL: [WeightingScheme; 5] = [
        WeightingScheme::Arcs,
        WeightingScheme::Js,
        WeightingScheme::Ejs,
        WeightingScheme::Cbs,
        WeightingScheme::Ecbs,
    ];

    /// Jaccard similarity of the block lists of `u` and `v`.
    #[inline]
    fn js(ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64 {
        let bu = ctx.node_blocks(u) as f64;
        let bv = ctx.node_blocks(v) as f64;
        let common = acc.common_blocks as f64;
        let denom = bu + bv - common;
        if denom <= 0.0 {
            0.0
        } else {
            common / denom
        }
    }
}

impl EdgeWeigher for WeightingScheme {
    fn weight(&self, ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64 {
        match self {
            WeightingScheme::Arcs => acc.arcs,
            WeightingScheme::Cbs => acc.common_blocks as f64,
            WeightingScheme::Ecbs => {
                let total = ctx.total_blocks() as f64;
                let bu = ctx.node_blocks(u) as f64;
                let bv = ctx.node_blocks(v) as f64;
                acc.common_blocks as f64 * (total / bu).ln() * (total / bv).ln()
            }
            WeightingScheme::Js => Self::js(ctx, u, v, acc),
            WeightingScheme::Ejs => {
                let edges = ctx.total_edges() as f64;
                let du = ctx.degree(u) as f64;
                let dv = ctx.degree(v) as f64;
                if du <= 0.0 || dv <= 0.0 {
                    return 0.0;
                }
                Self::js(ctx, u, v, acc) * (edges / du).ln() * (edges / dv).ln()
            }
        }
    }

    fn requires_degrees(&self) -> bool {
        matches!(self, WeightingScheme::Ejs)
    }

    fn global_deps(&self) -> WeightDeps {
        match self {
            WeightingScheme::Arcs | WeightingScheme::Cbs => WeightDeps::NONE,
            WeightingScheme::Js => WeightDeps::NODE_BLOCKS,
            // EJS additionally requires degrees; those are delta-maintained
            // by the incremental pipeline, so a degree/|E_G| move promotes a
            // commit to the reweigh tier instead of a degraded-full pass.
            WeightingScheme::Ecbs | WeightingScheme::Ejs => WeightDeps::ALL,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            WeightingScheme::Arcs => "ARCS",
            WeightingScheme::Cbs => "CBS",
            WeightingScheme::Ecbs => "ECBS",
            WeightingScheme::Js => "JS",
            WeightingScheme::Ejs => "EJS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// A small clean-clean collection with hand-computable statistics:
    /// E1 = {0,1}, E2 = {2,3}.
    /// b0 = {0,1 | 2,3}  (‖b0‖ = 4)
    /// b1 = {0 | 2}      (‖b1‖ = 1)
    /// b2 = {1 | 2}      (‖b2‖ = 1)
    /// b3 = {0 | 2}      (‖b3‖ = 1)
    fn sample() -> BlockCollection {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2, 3]), 2),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 2]), 2),
            Block::new("b2", ClusterId::GLUE, ids(&[1, 2]), 2),
            Block::new("b3", ClusterId::GLUE, ids(&[0, 2]), 2),
        ];
        BlockCollection::new(blocks, true, 2, 4)
    }

    #[test]
    fn cbs_counts_common_blocks() {
        let blocks = sample();
        let ctx = GraphSnapshot::build(&blocks);
        let acc = ctx.edge(0, 2).unwrap();
        assert_eq!(WeightingScheme::Cbs.weight(&ctx, 0, 2, &acc), 3.0);
        let acc = ctx.edge(0, 3).unwrap();
        assert_eq!(WeightingScheme::Cbs.weight(&ctx, 0, 3, &acc), 1.0);
    }

    #[test]
    fn js_matches_hand_computation() {
        let blocks = sample();
        let ctx = GraphSnapshot::build(&blocks);
        // |B_0| = 3 (b0,b1,b3), |B_2| = 4 (b0..b3), common = 3
        // JS = 3 / (3 + 4 − 3) = 0.75
        let acc = ctx.edge(0, 2).unwrap();
        assert!((WeightingScheme::Js.weight(&ctx, 0, 2, &acc) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ecbs_matches_hand_computation() {
        let blocks = sample();
        let ctx = GraphSnapshot::build(&blocks);
        // |B| = 4; w = 3 · ln(4/3) · ln(4/4) = 0 (node 2 is in every block).
        let acc = ctx.edge(0, 2).unwrap();
        let w = WeightingScheme::Ecbs.weight(&ctx, 0, 2, &acc);
        assert!(w.abs() < 1e-12);
        // Edge (0,3): |B_0| = 3, |B_3| = 1, common = 1:
        // w = 1 · ln(4/3) · ln(4) ≈ 0.2877 · 1.3863
        let acc = ctx.edge(0, 3).unwrap();
        let w = WeightingScheme::Ecbs.weight(&ctx, 0, 3, &acc);
        assert!((w - (4.0f64 / 3.0).ln() * 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn arcs_matches_hand_computation() {
        let blocks = sample();
        let ctx = GraphSnapshot::build(&blocks);
        // Edge (0,2) shares b0 (‖·‖=4), b1 (1), b3 (1): 1/4 + 1 + 1 = 2.25
        let acc = ctx.edge(0, 2).unwrap();
        assert!((WeightingScheme::Arcs.weight(&ctx, 0, 2, &acc) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn ejs_matches_hand_computation() {
        let blocks = sample();
        let mut ctx = GraphSnapshot::build(&blocks);
        ctx.ensure_degrees();
        // Graph: edges (0,2),(0,3),(1,2),(1,3) → 4 edges.
        // deg(0) = 2, deg(2) = 2; JS(0,2) = 0.75.
        // EJS = 0.75 · ln(4/2) · ln(4/2)
        assert_eq!(ctx.total_edges(), 4);
        let acc = ctx.edge(0, 2).unwrap();
        let w = WeightingScheme::Ejs.weight(&ctx, 0, 2, &acc);
        let expect = 0.75 * 2.0f64.ln() * 2.0f64.ln();
        assert!((w - expect).abs() < 1e-12, "{w} vs {expect}");
    }

    #[test]
    fn requires_degrees_only_for_ejs() {
        for s in WeightingScheme::ALL {
            assert_eq!(
                s.requires_degrees(),
                s == WeightingScheme::Ejs,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn global_deps_match_formulas() {
        assert_eq!(WeightingScheme::Cbs.global_deps(), WeightDeps::NONE);
        assert_eq!(WeightingScheme::Arcs.global_deps(), WeightDeps::NONE);
        assert_eq!(WeightingScheme::Js.global_deps(), WeightDeps::NODE_BLOCKS);
        assert_eq!(WeightingScheme::Ecbs.global_deps(), WeightDeps::ALL);
        assert_eq!(WeightingScheme::Ejs.global_deps(), WeightDeps::ALL);
        // Custom weighers default to the conservative ALL.
        struct Custom;
        impl EdgeWeigher for Custom {
            fn weight(&self, _: &GraphSnapshot, _: u32, _: u32, _: &EdgeAccum) -> f64 {
                1.0
            }
        }
        assert_eq!(Custom.global_deps(), WeightDeps::ALL);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<_> = WeightingScheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ARCS", "JS", "EJS", "CBS", "ECBS"]);
    }
}
