//! Dense scratch-array traversal engine for the implicit blocking graph.
//!
//! Node-centric meta-blocking spends essentially all of its time building
//! per-node adjacency: for every block containing the node, for every
//! co-occurring profile, bump that neighbour's [`EdgeAccum`]. The original
//! engine kept the accumulators in a `FastMap<u32, EdgeAccum>` — one hash +
//! probe per (node, neighbour, block) triple, plus a rehash whenever a hub
//! node outgrew the table.
//!
//! [`NodeScratch`] replaces the map with a *dense scratch array*: each
//! worker thread owns a `Vec<EdgeAccum>` sized to the profile count plus a
//! `touched` list of the neighbour ids hit while scanning the current node.
//! A neighbour update is then two direct array writes (`accum[v] += …`, and
//! a push onto `touched` the first time `v` is seen), and only the small
//! touched list is sorted to give the deterministic ascending-neighbour
//! order the float accumulation and tie-breaking rely on.
//!
//! ## The scratch-reset invariant
//!
//! Between nodes the engine **never clears the whole array** — that would
//! be O(|profiles|) per node and defeat the point. Instead it maintains the
//! invariant that *every slot not listed in `touched` holds
//! `EdgeAccum::default()`*: [`NodeScratch::load`] starts by resetting
//! exactly the slots its previous node touched, so each load pays O(degree)
//! regardless of the profile count. "Is this neighbour new?" is answered by
//! `common_blocks == 0`, which is safe because every update increments
//! `common_blocks` — a touched slot can never look untouched.
//!
//! Accumulation visits blocks in ascending block-id order (the CSR index
//! keeps each profile's block list sorted), which is the same order the
//! hashmap engine used — so `arcs` and `entropy_sum` are **bit-identical**
//! to the reference path, not just approximately equal. The property tests
//! in this module pin that equivalence.
//!
//! ## Scheduling
//!
//! The pass drivers (`node_chunks`, `owner_chunks`) split the node range
//! into fine-grained chunks claimed off an atomic counter
//! ([`blast_datamodel::parallel::parallel_work_steal`]): Zipf-skewed
//! collections concentrate the heavy hub nodes, and the contiguous
//! one-chunk-per-thread split left most threads idle while one ground
//! through the hub-dense stretch. Chunk geometry depends only on the range
//! length — never the thread count — and chunk results are merged in chunk
//! order, so every pass is bit-exact across thread counts.

use crate::context::{EdgeAccum, GraphSnapshot};
use blast_datamodel::parallel::parallel_work_steal;
use std::cell::RefCell;

/// A worker-local dense adjacency accumulator (see the module docs).
#[derive(Debug)]
pub struct NodeScratch {
    /// One accumulator slot per profile; all-default except touched slots.
    accum: Vec<EdgeAccum>,
    /// Neighbour ids of the currently loaded node, sorted ascending after
    /// [`NodeScratch::load`] returns.
    touched: Vec<u32>,
}

impl NodeScratch {
    /// A scratch able to hold the adjacency of any node of `ctx`.
    pub fn new(ctx: &GraphSnapshot) -> Self {
        Self::with_capacity(ctx.total_profiles() as usize)
    }

    /// A scratch covering `n` profiles.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            accum: vec![EdgeAccum::default(); n],
            touched: Vec::new(),
        }
    }

    /// Grows the scratch to cover at least `n` profiles (new slots default,
    /// preserving the reset invariant).
    fn ensure_capacity(&mut self, n: usize) {
        if self.accum.len() < n {
            self.accum.resize(n, EdgeAccum::default());
        }
    }

    /// Loads the adjacency of `node`, resetting the previously loaded one.
    /// Afterwards [`NodeScratch::iter`] yields `(neighbour, accum)` in
    /// ascending neighbour order.
    pub fn load(&mut self, ctx: &GraphSnapshot, node: u32) {
        for &v in &self.touched {
            self.accum[v as usize] = EdgeAccum::default();
        }
        self.touched.clear();

        let cardinalities = ctx.cardinalities();
        let entropies = ctx.entropies_opt();
        for &slot in ctx.index().blocks_of(node) {
            let inv = 1.0 / cardinalities[slot as usize];
            let ent = entropies.map_or(1.0, |e| e[slot as usize]);
            for &p in ctx.slot_neighbours(slot, node) {
                if p.0 == node {
                    continue;
                }
                let e = &mut self.accum[p.0 as usize];
                if e.common_blocks == 0 {
                    self.touched.push(p.0);
                }
                e.common_blocks += 1;
                e.arcs += inv;
                e.entropy_sum += ent;
            }
        }
        self.touched.sort_unstable();
    }

    /// Number of neighbours of the loaded node.
    #[inline]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether the loaded node is isolated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// The accumulator of neighbour `v`, if the loaded node has that edge.
    /// Out-of-range ids are simply absent, like a hashmap miss.
    #[inline]
    pub fn get(&self, v: u32) -> Option<EdgeAccum> {
        let acc = *self.accum.get(v as usize)?;
        (acc.common_blocks > 0).then_some(acc)
    }

    /// The loaded adjacency in ascending neighbour order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, EdgeAccum)> + '_ {
        self.touched
            .iter()
            .map(move |&v| (v, self.accum[v as usize]))
    }
}

thread_local! {
    /// Per-thread scratch behind [`GraphSnapshot::edge`] diagnostics — a
    /// lock-free replacement for the former `Mutex<Option<NodeScratch>>`:
    /// concurrent diagnostic probes no longer serialise, and the
    /// profile-sized array is still allocated once per thread, not per call.
    static DIAG_SCRATCH: RefCell<Option<NodeScratch>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's diagnostic scratch, grown to cover `n`
/// profiles. The scratch-reset invariant makes reuse across snapshots safe:
/// every `load` resets exactly the slots the previous load touched. A
/// scratch left over from a much larger snapshot is reallocated down (with
/// a generous floor) so a one-off probe of a huge collection does not pin
/// its profile-sized buffer for the rest of the thread's life.
pub(crate) fn with_diag_scratch<R>(n: usize, f: impl FnOnce(&mut NodeScratch) -> R) -> R {
    const SHRINK_FLOOR: usize = 1 << 20;
    DIAG_SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        let scratch = slot.get_or_insert_with(|| NodeScratch::with_capacity(n));
        if scratch.accum.len() > SHRINK_FLOOR && scratch.accum.len() / 4 > n {
            *scratch = NodeScratch::with_capacity(n);
        }
        scratch.ensure_capacity(n);
        f(scratch)
    })
}

/// Work-stealing chunk length for an `len`-node pass. A function of the
/// range length only — **never** the thread count — so chunk-ordered merges
/// (including floating-point folds) are bit-identical whatever the
/// parallelism.
#[inline]
pub(crate) fn chunk_len(len: usize) -> usize {
    (len / 128).clamp(32, 4096)
}

/// Runs `per_chunk(scratch, weighted_buf, chunk_range)` over `0..len` nodes
/// with work-stealing scheduling and a per-worker [`NodeScratch`], returning
/// per-chunk results in chunk order.
pub(crate) fn node_chunks<R, F>(ctx: &GraphSnapshot, len: usize, per_chunk: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut NodeScratch, &mut Vec<(u32, f64)>, std::ops::Range<usize>) -> R + Sync,
{
    parallel_work_steal(
        len,
        ctx.threads(),
        chunk_len(len),
        || (NodeScratch::new(ctx), Vec::new()),
        |(scratch, weighted), range| per_chunk(scratch, weighted, range),
    )
}

/// Like [`node_chunks`] but over the edge-owner range (the nodes that
/// enumerate each edge exactly once); the chunk callback receives absolute
/// node ids.
pub(crate) fn owner_chunks<R, F>(ctx: &GraphSnapshot, per_chunk: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut NodeScratch, std::ops::Range<u32>) -> R + Sync,
{
    let owners = ctx.edge_owner_range();
    let len = (owners.end - owners.start) as usize;
    let base = owners.start;
    parallel_work_steal(
        len,
        ctx.threads(),
        chunk_len(len),
        || NodeScratch::new(ctx),
        |scratch, range| {
            per_chunk(
                scratch,
                (base + range.start as u32)..(base + range.end as u32),
            )
        },
    )
}

/// One full adjacency pass computing node degrees and the total edge count.
pub(crate) fn degrees_pass(ctx: &GraphSnapshot) -> (Vec<u32>, u64) {
    let n = ctx.total_profiles() as usize;
    let chunks = node_chunks(ctx, n, |scratch, _, range| {
        let mut degrees = Vec::with_capacity(range.len());
        for node in range {
            scratch.load(ctx, node as u32);
            degrees.push(scratch.len() as u32);
        }
        degrees
    });
    let mut degrees = Vec::with_capacity(n);
    for c in chunks {
        degrees.extend(c);
    }
    let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
    (degrees, sum / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::common::collect_weighted_edges;
    use crate::weights::WeightingScheme;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;
    use blast_datamodel::hash::FastMap;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// The naive hashmap reference adjacency, identical to the pre-engine
    /// implementation.
    fn reference_adjacency(ctx: &GraphSnapshot, node: u32) -> Vec<(u32, EdgeAccum)> {
        let mut map: FastMap<u32, EdgeAccum> = FastMap::default();
        ctx.accumulate_neighbors(node, &mut map);
        let mut adj: Vec<(u32, EdgeAccum)> = map.into_iter().collect();
        adj.sort_unstable_by_key(|(v, _)| *v);
        adj
    }

    fn assert_scratch_matches_reference(blocks: &BlockCollection, entropies: Option<Vec<f64>>) {
        let mut ctx = GraphSnapshot::build(blocks);
        if let Some(e) = entropies {
            ctx = ctx.with_block_entropies(e);
        }
        let mut scratch = NodeScratch::new(&ctx);
        for node in 0..ctx.total_profiles() {
            scratch.load(&ctx, node);
            let dense: Vec<(u32, EdgeAccum)> = scratch.iter().collect();
            let reference = reference_adjacency(&ctx, node);
            assert_eq!(
                dense.len(),
                reference.len(),
                "neighbour count of node {node}"
            );
            for (&(dv, da), &(rv, ra)) in dense.iter().zip(&reference) {
                assert_eq!(dv, rv, "neighbour set of node {node}");
                assert_eq!(da.common_blocks, ra.common_blocks, "edge ({node},{dv})");
                // Bit-exact, not approximate: same summation order.
                assert_eq!(
                    da.arcs.to_bits(),
                    ra.arcs.to_bits(),
                    "arcs of edge ({node},{dv})"
                );
                assert_eq!(
                    da.entropy_sum.to_bits(),
                    ra.entropy_sum.to_bits(),
                    "entropy_sum of edge ({node},{dv})"
                );
            }
        }
    }

    #[test]
    fn scratch_resets_between_nodes() {
        let b = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[2, 3]), u32::MAX),
        ];
        let blocks = BlockCollection::new(b, false, 4, 4);
        let ctx = GraphSnapshot::build(&blocks);
        let mut scratch = NodeScratch::new(&ctx);
        scratch.load(&ctx, 0);
        assert_eq!(
            scratch.iter().map(|(v, _)| v).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Node 3 shares nothing with node 0; stale slots must be gone.
        scratch.load(&ctx, 3);
        assert_eq!(scratch.iter().map(|(v, _)| v).collect::<Vec<_>>(), vec![2]);
        assert_eq!(scratch.get(2).unwrap().common_blocks, 1);
        assert!(scratch.get(1).is_none(), "slot 1 was reset");
        // An empty reload leaves a clean scratch.
        scratch.load(&ctx, 3);
        assert_eq!(scratch.len(), 1);
    }

    #[test]
    fn get_handles_out_of_range_ids() {
        let b = vec![Block::new("b0", ClusterId::GLUE, ids(&[0, 1]), u32::MAX)];
        let blocks = BlockCollection::new(b, false, 2, 2);
        let ctx = GraphSnapshot::build(&blocks);
        let mut scratch = NodeScratch::new(&ctx);
        scratch.load(&ctx, 0);
        assert_eq!(scratch.get(1).unwrap().common_blocks, 1);
        // A non-existent id is a miss, not a panic (hashmap semantics).
        assert!(scratch.get(1_000_000).is_none());
        assert!(ctx.edge(0, 1_000_000).is_none());
    }

    #[test]
    fn collect_weighted_edges_is_sorted_and_unique() {
        let b = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[1, 3]), u32::MAX),
        ];
        let blocks = BlockCollection::new(b, false, 4, 4);
        let ctx = GraphSnapshot::build(&blocks);
        let edges = collect_weighted_edges(&ctx, &WeightingScheme::Cbs);
        let keys: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "deterministic order, each edge once");
        assert_eq!(keys.len(), 6);
    }

    proptest! {
        /// Dense adjacency ≡ naive hashmap reference on random dirty
        /// collections: same neighbour sets, same `common_blocks`, bit-exact
        /// `arcs` and `entropy_sum`.
        #[test]
        fn prop_dense_equals_hashmap_dirty(
            memberships in proptest::collection::vec(
                proptest::collection::btree_set(0u32..24, 0..10), 1..24)
        ) {
            let blocks: Vec<Block> = memberships
                .iter()
                .enumerate()
                .map(|(i, set)| Block::new(
                    format!("b{i}"),
                    ClusterId::GLUE,
                    set.iter().map(|&p| ProfileId(p)).collect(),
                    u32::MAX,
                ))
                .collect();
            let n_entropies = blocks.len();
            let collection = BlockCollection::new(blocks, false, 24, 24);
            assert_scratch_matches_reference(&collection, None);
            // And with per-block entropies attached.
            let entropies: Vec<f64> = (0..n_entropies).map(|i| 0.5 + i as f64 * 0.25).collect();
            assert_scratch_matches_reference(&collection, Some(entropies));
        }

        /// Same equivalence on clean-clean (bipartite) collections, where
        /// the neighbour enumeration takes the inner1/inner2 path.
        #[test]
        fn prop_dense_equals_hashmap_clean_clean(
            memberships in proptest::collection::vec(
                proptest::collection::btree_set(0u32..20, 0..8), 1..20)
        ) {
            let separator = 10u32;
            let blocks: Vec<Block> = memberships
                .iter()
                .enumerate()
                .map(|(i, set)| Block::new(
                    format!("b{i}"),
                    ClusterId::GLUE,
                    set.iter().map(|&p| ProfileId(p)).collect(),
                    separator,
                ))
                .collect();
            let collection = BlockCollection::new(blocks, true, separator, 20);
            assert_scratch_matches_reference(&collection, None);
        }
    }
}
