//! Blocking-graph substrate and baseline (traditional) meta-blocking.
//!
//! A block collection induces a *blocking graph* G_B (§2.2): profiles are
//! nodes, an edge connects two profiles co-occurring in ≥1 block, and edge
//! weights capture match likelihood. The graph is never materialised — it is
//! enumerated node-centrically from the CSR profile→block index, which is
//! how the reference implementations scale.
//!
//! * [`context`] — [`context::GraphContext`]: the implicit graph (index,
//!   block cardinalities, per-block entropy hooks, node degrees).
//! * [`traversal`] — the dense scratch-array engine every pass runs on:
//!   per-worker [`traversal::NodeScratch`] adjacency accumulation with
//!   work-stealing scheduling, bit-exact across thread counts.
//! * [`weights`] — the five traditional weighting schemes of \[20\]
//!   (ARCS, CBS, ECBS, JS, EJS) behind the [`weights::EdgeWeigher`] trait,
//!   which `blast-core` also implements for its χ²·entropy weighting.
//! * [`pruning`] — WEP, CEP, redefined/reciprocal WNP and CNP.
//! * [`meta`] — [`meta::MetaBlocker`]: scheme × pruning in one call.
//! * [`retained`] — the retained comparisons (the restructured block
//!   collection: one block per surviving pair).

pub mod context;
pub mod meta;
pub mod pruning;
pub mod retained;
pub mod traversal;
pub mod weights;

pub use context::{EdgeAccum, GraphContext};
pub use meta::{MetaBlocker, PruningAlgorithm};
pub use retained::RetainedPairs;
pub use traversal::NodeScratch;
pub use weights::{EdgeWeigher, WeightingScheme};
