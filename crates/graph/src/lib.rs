//! Blocking-graph substrate and baseline (traditional) meta-blocking.
//!
//! A block collection induces a *blocking graph* G_B (§2.2): profiles are
//! nodes, an edge connects two profiles co-occurring in ≥1 block, and edge
//! weights capture match likelihood. The graph is never materialised — it is
//! enumerated node-centrically from the CSR profile→block rows, which is
//! how the reference implementations scale.
//!
//! ## The snapshot/delta design
//!
//! The central abstraction is the **owned, versioned**
//! [`context::GraphSnapshot`]: it owns the CSR rows, per-block membership,
//! cardinalities, entropies, the live block count and (lazily) node
//! degrees, keyed by *stable block slots* so state survives across
//! commits. Two construction paths share it:
//!
//! * **Batch** — [`context::GraphSnapshot::build`] materialises everything
//!   once from a cleaned `BlockCollection` (slot i = block i) and the
//!   pruning passes run over it; nothing is ever rebuilt.
//! * **Incremental** — the pipeline starts from
//!   [`context::GraphSnapshot::empty`] and, per commit, **applies a
//!   [`context::SnapshotDelta`]** produced by the incremental cleaner:
//!   dirty block slots are re-stated, dirty CSR rows are spliced in place
//!   (`blast_blocking::ProfileBlockIndex::splice_row`, tombstoned
//!   free-list included), and the aggregate statistics are adjusted — cost
//!   proportional to the dirty neighbourhood, never the collection. The
//!   patched snapshot is field-for-field identical to a fresh `build` on
//!   the materialised collection (pinned by `tests/snapshot_maintenance.rs`),
//!   which is what keeps incremental repair bit-identical to batch.
//!
//! ## The factored-weight representation
//!
//! Every edge weight is **factored** into *(local components, global
//! scalars)*: the per-edge [`context::EdgeAccum`] — shared-block count,
//! ARCS reciprocal sum, entropy tally, gathered once per accumulation —
//! plus the O(1) statistics the snapshot serves (|B|, |B_u|, degrees,
//! |E_G|). [`weights::EdgeWeigher::weight`] must be a pure function of the
//! two (the contract is spelled out on the trait), which is what the
//! incremental repair ladder's *reweigh tier* exploits: when only a global
//! scalar drifts — |B| for a [`weights::WeightDeps`] `total_blocks` scheme
//! (ECBS, χ²), |E_G| for EJS — every clean edge's weight is re-derived
//! from its **cached** accumulator and the patched snapshot, with no block
//! traversal and no re-accumulation, bit-identical to a batch pass because
//! the inputs are. Node degrees themselves are **delta-maintainable**
//! ([`context::GraphSnapshot::begin_degree_maintenance`] /
//! [`context::GraphSnapshot::apply_degree_deltas`]): integers patched by
//! exact ±1 deltas from edge births/deaths, so EJS no longer needs a
//! per-commit full degree pass. A **full graph re-pass** (not an index
//! rebuild — the snapshot is still patched, only the weighting/pruning
//! pass widens to every node) remains only for genuinely structural
//! invalidation: the first pass, or a shift of CNP's derived budget k. It
//! runs the identical code path over the identical snapshot, preserving
//! bit-equivalence.
//!
//! ## Modules
//!
//! * [`context`] — [`context::GraphSnapshot`] + [`context::SnapshotDelta`]:
//!   the owned graph state and its patch protocol.
//! * [`traversal`] — the dense scratch-array engine every pass runs on:
//!   per-worker [`traversal::NodeScratch`] adjacency accumulation with
//!   work-stealing scheduling, bit-exact across thread counts; diagnostics
//!   reuse a lock-free thread-local scratch.
//! * [`weights`] — the five traditional weighting schemes of \[20\]
//!   (ARCS, CBS, ECBS, JS, EJS) behind the [`weights::EdgeWeigher`] trait,
//!   which `blast-core` also implements for its χ²·entropy weighting, plus
//!   [`weights::WeightDeps`] — the global-statistic dependencies that drive
//!   the incremental fallback decision.
//! * [`pruning`] — WEP, CEP, redefined/reciprocal WNP and CNP.
//! * [`meta`] — [`meta::MetaBlocker`]: scheme × pruning in one call.
//! * [`retained`] — the retained comparisons (the restructured block
//!   collection: one block per surviving pair).

pub mod cold;
pub mod context;
pub mod exact_sum;
pub mod meta;
pub mod pruning;
pub mod retained;
pub mod traversal;
pub mod weights;

pub use cold::{ColdError, ColdStats, ColdStore, FrameRef, SpillBackend};
pub use context::{ApplyStats, EdgeAccum, GraphSnapshot, RowPatch, SlotPatch, SnapshotDelta};
pub use exact_sum::ExactSum;
pub use meta::{MetaBlocker, PruningAlgorithm};
pub use pruning::common::EpochMask;
pub use retained::{RetainedIndex, RetainedPairs};
pub use traversal::NodeScratch;
pub use weights::{EdgeWeigher, WeightingScheme};
