//! The output of meta-blocking: the retained comparisons.
//!
//! After pruning, "each pair of nodes connected by an edge forms a new
//! block" (§2.2) — so the restructured collection is exactly the set of
//! retained pairs, with ‖B'‖ = number of pairs and no redundant comparisons
//! by construction.

use blast_blocking::block::Block;
use blast_blocking::collection::BlockCollection;
use blast_blocking::key::ClusterId;
use blast_datamodel::entity::ProfileId;

/// The comparisons surviving a pruning scheme (each pair appears once,
/// smaller id first, sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RetainedPairs {
    pairs: Vec<(ProfileId, ProfileId)>,
}

impl RetainedPairs {
    /// Wraps a pair list, normalising (swap to smaller-first), sorting and
    /// deduplicating.
    pub fn new(mut pairs: Vec<(ProfileId, ProfileId)>) -> Self {
        for p in &mut pairs {
            if p.0 > p.1 {
                std::mem::swap(&mut p.0, &mut p.1);
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// Wraps a pair list that is **already normalised** (each pair smaller
    /// id first, sorted ascending, unique) without re-sorting — the hot
    /// path for incremental repair, which merges two sorted retained sets
    /// per micro-batch. The invariant is debug-asserted.
    pub fn from_sorted(pairs: Vec<(ProfileId, ProfileId)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0] < w[1]),
            "pairs must be sorted and unique"
        );
        debug_assert!(
            pairs.iter().all(|p| p.0 < p.1),
            "pairs must be smaller id first"
        );
        Self { pairs }
    }

    /// The retained pairs (sorted, unique, smaller id first).
    #[inline]
    pub fn pairs(&self) -> &[(ProfileId, ProfileId)] {
        &self.pairs
    }

    /// Number of retained comparisons (the ‖B‖ column of Tables 4, 5, 7).
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing survived.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a specific pair survived.
    pub fn contains(&self, a: ProfileId, b: ProfileId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.binary_search(&key).is_ok()
    }

    /// Iterates over the retained pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProfileId, ProfileId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Materialises the restructured block collection: one block of two
    /// profiles per retained comparison, shaped like `template`.
    pub fn to_block_collection(&self, template: &BlockCollection) -> BlockCollection {
        let sep = template.separator();
        let blocks = self
            .pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Block::new(format!("e{i}"), ClusterId::GLUE, vec![a, b], sep))
            .collect();
        template.with_blocks(blocks)
    }
}

impl FromIterator<(ProfileId, ProfileId)> for RetainedPairs {
    fn from_iter<T: IntoIterator<Item = (ProfileId, ProfileId)>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// The retained set in per-node adjacency form — the incremental hot-path
/// representation. Where [`RetainedPairs`] is one flat sorted vector (ideal
/// for batch output, but any change means rewriting the whole vector), the
/// index stores each surviving pair in *both* endpoints' sorted neighbour
/// rows, so a commit can
///
/// * enumerate exactly the survivors incident to the dirty nodes (the old
///   side of the flip diff) without scanning clean survivors, and
/// * apply a retention flip in O(log d + d) row surgery instead of an
///   O(‖B′‖) merge of the full candidate set.
///
/// [`RetainedIndex::to_pairs`] materialises the flat form on demand (the
/// read path is lazy; nothing on the commit path pays it).
#[derive(Debug, Clone, Default)]
pub struct RetainedIndex {
    rows: Vec<Vec<u32>>,
    len: usize,
}

impl RetainedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated resident heap footprint in bytes (row capacities).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rows
            .iter()
            .map(|r| r.capacity() * size_of::<u32>())
            .sum::<usize>()
            + self.rows.len() * size_of::<Vec<u32>>()
    }

    /// Grows the row table to cover `n` nodes (never shrinks).
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
        }
    }

    /// Row entries per owner shard under round-robin node ownership
    /// (`shard = u mod shards`; mirrored pairs count at both endpoint
    /// rows) — the decision-state slice sizes of the sharded commit path.
    /// O(rows); diagnostics only.
    pub fn shard_row_counts(&self, shards: usize) -> Vec<usize> {
        let shards = shards.max(1);
        let mut counts = vec![0usize; shards];
        for (u, row) in self.rows.iter().enumerate() {
            counts[u % shards] += row.len();
        }
        counts
    }

    /// Drops every pair (rows stay allocated).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
        self.len = 0;
    }

    /// Number of retained pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing survived.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the pair `(a, b)` is currently retained.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.rows
            .get(a as usize)
            .is_some_and(|row| row.binary_search(&b).is_ok())
    }

    /// The retained partners of `u`, ascending.
    pub fn neighbours(&self, u: u32) -> &[u32] {
        self.rows.get(u as usize).map_or(&[], |r| r)
    }

    /// Inserts a pair, returning whether it was new.
    pub fn insert(&mut self, a: u32, b: u32) -> bool {
        debug_assert_ne!(a, b);
        let max = a.max(b) as usize;
        if self.rows.len() <= max {
            self.rows.resize_with(max + 1, Vec::new);
        }
        match self.rows[a as usize].binary_search(&b) {
            Ok(_) => false,
            Err(i) => {
                self.rows[a as usize].insert(i, b);
                let j = self.rows[b as usize]
                    .binary_search(&a)
                    .expect_err("rows must mirror");
                self.rows[b as usize].insert(j, a);
                self.len += 1;
                true
            }
        }
    }

    /// Removes a pair, returning whether it was present.
    pub fn remove(&mut self, a: u32, b: u32) -> bool {
        let Some(row) = self.rows.get_mut(a as usize) else {
            return false;
        };
        match row.binary_search(&b) {
            Err(_) => false,
            Ok(i) => {
                row.remove(i);
                let j = self.rows[b as usize]
                    .binary_search(&a)
                    .expect("rows must mirror");
                self.rows[b as usize].remove(j);
                self.len -= 1;
                true
            }
        }
    }

    /// Materialises the flat sorted form (each pair once, smaller id
    /// first). O(‖B′‖) — the lazy read path, not the commit path.
    pub fn to_pairs(&self) -> RetainedPairs {
        let mut pairs = Vec::with_capacity(self.len);
        for (u, row) in self.rows.iter().enumerate() {
            let u = u as u32;
            for &v in row {
                if v > u {
                    pairs.push((ProfileId(u), ProfileId(v)));
                }
            }
        }
        RetainedPairs::from_sorted(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> (ProfileId, ProfileId) {
        (ProfileId(a), ProfileId(b))
    }

    #[test]
    fn from_sorted_trusts_normalised_input() {
        let pairs = vec![p(0, 1), p(1, 3), p(2, 5)];
        let r = RetainedPairs::from_sorted(pairs.clone());
        assert_eq!(r.pairs(), &pairs[..]);
        assert_eq!(r, RetainedPairs::new(pairs));
    }

    #[test]
    fn normalises_sorts_dedupes() {
        let r = RetainedPairs::new(vec![p(5, 2), p(2, 5), p(1, 3)]);
        assert_eq!(r.pairs(), &[p(1, 3), p(2, 5)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(ProfileId(5), ProfileId(2)));
        assert!(!r.contains(ProfileId(1), ProfileId(2)));
    }

    #[test]
    fn block_collection_has_one_pair_per_block() {
        let r = RetainedPairs::new(vec![p(0, 2), p(1, 3)]);
        let template = BlockCollection::new(Vec::new(), true, 2, 4);
        let bc = r.to_block_collection(&template);
        assert_eq!(bc.len(), 2);
        assert_eq!(bc.aggregate_cardinality(), 2);
        assert!(bc.is_clean_clean());
        for b in bc.blocks() {
            assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn retained_index_mirrors_and_materialises() {
        let mut idx = RetainedIndex::new();
        assert!(idx.insert(3, 1));
        assert!(idx.insert(1, 2));
        assert!(!idx.insert(1, 3), "insert is idempotent both ways");
        assert_eq!(idx.len(), 2);
        assert!(idx.contains(2, 1) && idx.contains(1, 3));
        assert_eq!(idx.neighbours(1), &[2, 3]);
        assert_eq!(idx.to_pairs().pairs(), &[p(1, 2), p(1, 3)]);
        assert!(idx.remove(2, 1));
        assert!(!idx.remove(1, 2), "already gone");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.to_pairs().pairs(), &[p(1, 3)]);
        idx.clear();
        assert!(idx.is_empty());
        assert!(idx.to_pairs().is_empty());
    }

    #[test]
    fn meta_blocking_prevents_redundancy() {
        // Even if a pair is produced twice by a pruning pass, the output
        // contains it once — "two profiles can appear together in the final
        // block collection at most once" (§2.2).
        let r: RetainedPairs = vec![p(0, 2), p(2, 0), p(0, 2)].into_iter().collect();
        assert_eq!(r.len(), 1);
    }
}
