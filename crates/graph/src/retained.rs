//! The output of meta-blocking: the retained comparisons.
//!
//! After pruning, "each pair of nodes connected by an edge forms a new
//! block" (§2.2) — so the restructured collection is exactly the set of
//! retained pairs, with ‖B'‖ = number of pairs and no redundant comparisons
//! by construction.

use blast_blocking::block::Block;
use blast_blocking::collection::BlockCollection;
use blast_blocking::key::ClusterId;
use blast_datamodel::entity::ProfileId;

/// The comparisons surviving a pruning scheme (each pair appears once,
/// smaller id first, sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RetainedPairs {
    pairs: Vec<(ProfileId, ProfileId)>,
}

impl RetainedPairs {
    /// Wraps a pair list, normalising (swap to smaller-first), sorting and
    /// deduplicating.
    pub fn new(mut pairs: Vec<(ProfileId, ProfileId)>) -> Self {
        for p in &mut pairs {
            if p.0 > p.1 {
                std::mem::swap(&mut p.0, &mut p.1);
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// Wraps a pair list that is **already normalised** (each pair smaller
    /// id first, sorted ascending, unique) without re-sorting — the hot
    /// path for incremental repair, which merges two sorted retained sets
    /// per micro-batch. The invariant is debug-asserted.
    pub fn from_sorted(pairs: Vec<(ProfileId, ProfileId)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0] < w[1]),
            "pairs must be sorted and unique"
        );
        debug_assert!(
            pairs.iter().all(|p| p.0 < p.1),
            "pairs must be smaller id first"
        );
        Self { pairs }
    }

    /// The retained pairs (sorted, unique, smaller id first).
    #[inline]
    pub fn pairs(&self) -> &[(ProfileId, ProfileId)] {
        &self.pairs
    }

    /// Number of retained comparisons (the ‖B‖ column of Tables 4, 5, 7).
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing survived.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a specific pair survived.
    pub fn contains(&self, a: ProfileId, b: ProfileId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.binary_search(&key).is_ok()
    }

    /// Iterates over the retained pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProfileId, ProfileId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Materialises the restructured block collection: one block of two
    /// profiles per retained comparison, shaped like `template`.
    pub fn to_block_collection(&self, template: &BlockCollection) -> BlockCollection {
        let sep = template.separator();
        let blocks = self
            .pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Block::new(format!("e{i}"), ClusterId::GLUE, vec![a, b], sep))
            .collect();
        template.with_blocks(blocks)
    }
}

impl FromIterator<(ProfileId, ProfileId)> for RetainedPairs {
    fn from_iter<T: IntoIterator<Item = (ProfileId, ProfileId)>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> (ProfileId, ProfileId) {
        (ProfileId(a), ProfileId(b))
    }

    #[test]
    fn from_sorted_trusts_normalised_input() {
        let pairs = vec![p(0, 1), p(1, 3), p(2, 5)];
        let r = RetainedPairs::from_sorted(pairs.clone());
        assert_eq!(r.pairs(), &pairs[..]);
        assert_eq!(r, RetainedPairs::new(pairs));
    }

    #[test]
    fn normalises_sorts_dedupes() {
        let r = RetainedPairs::new(vec![p(5, 2), p(2, 5), p(1, 3)]);
        assert_eq!(r.pairs(), &[p(1, 3), p(2, 5)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(ProfileId(5), ProfileId(2)));
        assert!(!r.contains(ProfileId(1), ProfileId(2)));
    }

    #[test]
    fn block_collection_has_one_pair_per_block() {
        let r = RetainedPairs::new(vec![p(0, 2), p(1, 3)]);
        let template = BlockCollection::new(Vec::new(), true, 2, 4);
        let bc = r.to_block_collection(&template);
        assert_eq!(bc.len(), 2);
        assert_eq!(bc.aggregate_cardinality(), 2);
        assert!(bc.is_clean_clean());
        for b in bc.blocks() {
            assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn meta_blocking_prevents_redundancy() {
        // Even if a pair is produced twice by a pruning pass, the output
        // contains it once — "two profiles can appear together in the final
        // block collection at most once" (§2.2).
        let r: RetainedPairs = vec![p(0, 2), p(2, 0), p(0, 2)].into_iter().collect();
        assert_eq!(r.len(), 1);
    }
}
