//! Minimal scoped-thread parallel helpers (crossbeam-based).
//!
//! The heavy loops in this workspace — attribute-pair similarity and
//! node-centric graph weighting — are embarrassingly parallel over disjoint
//! index ranges. These helpers split a range into contiguous chunks, run a
//! worker per chunk on scoped threads, and return the per-chunk results in
//! order, so callers can merge deterministically regardless of thread
//! scheduling.

/// Number of worker threads to use: the available parallelism, capped so
/// tiny inputs don't pay thread-spawn overhead.
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Below ~4k items per thread the spawn overhead dominates.
    hw.min(items / 4096 + 1).max(1)
}

/// Splits `0..len` into at most `threads` contiguous chunks and runs
/// `worker(chunk_range)` for each on scoped threads. Results are returned in
/// chunk order (deterministic merge).
pub fn parallel_ranges<R, F>(len: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || len == 0 {
        return vec![worker(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let ranges: Vec<_> = (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect();
    let mut results: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    results.resize_with(ranges.len(), || None);
    crossbeam::scope(|scope| {
        for (slot, range) in results.iter_mut().zip(ranges) {
            let worker = &worker;
            scope.spawn(move |_| {
                *slot = Some(worker(range));
            });
        }
    })
    .expect("parallel worker panicked");
    results.into_iter().map(|r| r.expect("worker ran")).collect()
}

/// Parallel map over a slice: applies `f` to every element, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunks = parallel_ranges(items.len(), threads, |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly_once() {
        let parts = parallel_ranges(100, 7, |r| r.collect::<Vec<usize>>());
        let all: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let parts = parallel_ranges(5, 1, |r| r.len());
        assert_eq!(parts, vec![5]);
        let parts = parallel_ranges(0, 4, |r| r.len());
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn map_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let doubled = parallel_map(&data, 4, |x| x * 2);
        assert_eq!(doubled.len(), data.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn default_threads_reasonable() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(10) >= 1);
        assert!(default_threads(1_000_000) >= 1);
    }
}
