//! Minimal scoped-thread parallel helpers (std scoped threads).
//!
//! The heavy loops in this workspace — attribute-pair similarity and
//! node-centric graph weighting — are embarrassingly parallel over disjoint
//! index ranges. Two schedulers are provided:
//!
//! * [`parallel_ranges`] — one contiguous chunk per thread. Cheapest
//!   scheduling, fine for uniform work.
//! * [`parallel_work_steal`] — the range is cut into many fine-grained
//!   chunks claimed off a shared atomic counter. Zipf-skewed collections
//!   concentrate the heavy nodes in a few spots, and contiguous chunking
//!   then leaves most threads idle while one grinds through the hot chunk;
//!   dynamic claiming keeps every thread busy until the queue drains.
//!
//! Both return per-chunk results **in chunk order**, so callers can merge
//! deterministically regardless of thread scheduling. For
//! [`parallel_work_steal`] the chunk geometry depends only on `len` and
//! `chunk` — never on the thread count — so even order-sensitive merges
//! (floating-point folds) are bit-identical across thread counts.

use blast_obs::{names, LazyCounter, LazyHistogram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Work-stealing invocations, recorded into the process-wide registry (the
/// scheduler is called from deep inside the weighting loops — a handle
/// can't reasonably be plumbed through).
static STEAL_INVOCATIONS: LazyCounter = LazyCounter::new(names::SCHEDULER_INVOCATIONS);
/// Chunks processed across all work-stealing invocations.
static STEAL_CHUNKS: LazyCounter = LazyCounter::new(names::SCHEDULER_CHUNKS);
/// Chunks claimed per worker activation — the steal-balance distribution,
/// aggregated over all pool sizes (kept for dashboard continuity).
static STEAL_CHUNKS_PER_WORKER: LazyHistogram =
    LazyHistogram::new(names::SCHEDULER_CHUNKS_PER_WORKER);
/// The same distribution labelled by worker-pool size, so multi-core runs
/// are distinguishable on the Prometheus page: one histogram per pool size
/// 1/2/4/8, everything else under `.other`.
static STEAL_CHUNKS_BY_POOL: [LazyHistogram; 5] = [
    LazyHistogram::new(names::SCHEDULER_CHUNKS_PER_WORKER_T1),
    LazyHistogram::new(names::SCHEDULER_CHUNKS_PER_WORKER_T2),
    LazyHistogram::new(names::SCHEDULER_CHUNKS_PER_WORKER_T4),
    LazyHistogram::new(names::SCHEDULER_CHUNKS_PER_WORKER_T8),
    LazyHistogram::new(names::SCHEDULER_CHUNKS_PER_WORKER_OTHER),
];

/// The pool-size-labelled lane of the chunks-per-worker distribution.
fn chunks_by_pool(workers: usize) -> &'static LazyHistogram {
    match workers {
        1 => &STEAL_CHUNKS_BY_POOL[0],
        2 => &STEAL_CHUNKS_BY_POOL[1],
        4 => &STEAL_CHUNKS_BY_POOL[2],
        8 => &STEAL_CHUNKS_BY_POOL[3],
        _ => &STEAL_CHUNKS_BY_POOL[4],
    }
}

/// The `BLAST_THREADS` override, read once per process (the scheduler runs
/// deep inside hot loops; an env lookup per invocation would be felt).
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("BLAST_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// Number of worker threads to use: the available parallelism, capped so
/// tiny inputs don't pay thread-spawn overhead. A `BLAST_THREADS`
/// environment override pins the count unconditionally for any non-empty
/// input (the knob CI's multi-core tier-1 run and operators turn; explicit
/// per-structure overrides like `GraphSnapshot::with_threads` still win
/// over both). Zero items is always one thread — there is nothing to pin.
pub fn default_threads(items: usize) -> usize {
    if items == 0 {
        return 1;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Below ~4k items per thread the spawn overhead dominates.
    hw.min(items / 4096 + 1).max(1)
}

/// Splits `0..len` into at most `threads` contiguous chunks and runs
/// `worker(chunk_range)` for each on scoped threads. Results are returned in
/// chunk order (deterministic merge).
pub fn parallel_ranges<R, F>(len: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || len == 0 {
        return vec![worker(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let ranges: Vec<_> = (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect();
    let mut results: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, range) in results.iter_mut().zip(ranges) {
            let worker = &worker;
            scope.spawn(move || {
                *slot = Some(worker(range));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker ran"))
        .collect()
}

/// Work-stealing scheduler with per-worker scratch state.
///
/// `0..len` is cut into `⌈len/chunk⌉` chunks; workers repeatedly claim the
/// next unprocessed chunk off an atomic counter. Each worker owns one state
/// value built by `init` (e.g. a dense scratch array) that is reused across
/// all chunks it processes — states are never shared between threads.
///
/// Returns the per-chunk results **in chunk order**. Because the chunk
/// geometry is a function of `len` and `chunk` alone, the result vector —
/// including any order-sensitive per-chunk accumulation — is bit-identical
/// for every thread count.
pub fn parallel_work_steal<S, R, FI, FW>(
    len: usize,
    threads: usize,
    chunk: usize,
    init: FI,
    work: FW,
) -> Vec<R>
where
    R: Send,
    FI: Fn() -> S + Sync,
    FW: Fn(&mut S, std::ops::Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let threads = threads.max(1);
    STEAL_INVOCATIONS.inc();
    if len == 0 {
        let mut state = init();
        return vec![work(&mut state, 0..0)];
    }
    let n_chunks = len.div_ceil(chunk);
    let range_of = |i: usize| (i * chunk)..((i + 1) * chunk).min(len);
    STEAL_CHUNKS.add(n_chunks as u64);
    if threads == 1 || n_chunks == 1 {
        let mut state = init();
        STEAL_CHUNKS_PER_WORKER.record(n_chunks as u64);
        chunks_by_pool(1).record(n_chunks as u64);
        return (0..n_chunks)
            .map(|i| work(&mut state, range_of(i)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n_chunks);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    results.resize_with(n_chunks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        local.push((i, work(&mut state, range_of(i))));
                    }
                    // Recorded from the worker's own thread — each records
                    // into its own histogram shard, so the steal-balance
                    // distribution costs no synchronisation.
                    STEAL_CHUNKS_PER_WORKER.record(local.len() as u64);
                    chunks_by_pool(workers).record(local.len() as u64);
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("parallel worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk claimed"))
        .collect()
}

/// Parallel map over a slice: applies `f` to every element, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunks = parallel_ranges(items.len(), threads, |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly_once() {
        let parts = parallel_ranges(100, 7, |r| r.collect::<Vec<usize>>());
        let all: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let parts = parallel_ranges(5, 1, |r| r.len());
        assert_eq!(parts, vec![5]);
        let parts = parallel_ranges(0, 4, |r| r.len());
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn map_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let doubled = parallel_map(&data, 4, |x| x * 2);
        assert_eq!(doubled.len(), data.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn default_threads_reasonable() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(10) >= 1);
        assert!(default_threads(1_000_000) >= 1);
    }

    #[test]
    fn work_steal_covers_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let parts =
                parallel_work_steal(101, threads, 7, || (), |_, r| r.collect::<Vec<usize>>());
            let all: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(all, (0..101).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn work_steal_chunk_geometry_is_thread_independent() {
        let shapes: Vec<Vec<usize>> = [1, 2, 5, 16]
            .iter()
            .map(|&t| parallel_work_steal(1000, t, 64, || (), |_, r| r.len()))
            .collect();
        for s in &shapes[1..] {
            assert_eq!(&shapes[0], s);
        }
    }

    #[test]
    fn work_steal_reuses_worker_state() {
        // Each worker's state counts the chunks it processed; the total over
        // all workers must equal the number of chunks.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        struct Guard<'a>(&'a AtomicUsize, usize);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(self.1, Ordering::Relaxed);
            }
        }
        parallel_work_steal(
            100,
            4,
            10,
            || Guard(&total, 0),
            |g, _| {
                g.1 += 1;
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn work_steal_empty_input() {
        let parts = parallel_work_steal(0, 4, 16, || (), |_, r| r.len());
        assert_eq!(parts, vec![0]);
    }
}
