//! Fast, deterministic hashing for hot-path maps.
//!
//! The default `SipHash` in `std` is HashDoS-resistant but slow for the
//! short integer and string keys that dominate blocking workloads. This is
//! the well-known Fx algorithm (a multiply–rotate mix, as used by rustc),
//! implemented locally to keep the dependency set minimal. All inputs are
//! internal (interned ids, token ids), so HashDoS resistance is not needed.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher (Fx algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, b) in rem.iter().enumerate() {
                word |= (*b as u64) << (8 * i);
            }
            // Mix in the length so "a" and "a\0" differ.
            self.add_to_hash(word ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast Fx hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast Fx hasher.
pub type FastSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes an arbitrary `Hash` value with the Fx hasher (convenience for
/// hash-indexed structures like the interner).
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_hash_one(&"token"), fx_hash_one(&"token"));
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx_hash_one(&"abc"), fx_hash_one(&"abd"));
        assert_ne!(fx_hash_one(&1u32), fx_hash_one(&2u32));
    }

    #[test]
    fn distinguishes_short_strings_by_length() {
        assert_ne!(fx_hash_one(&"a"), fx_hash_one(&"a\0"));
        assert_ne!(fx_hash_one(&""), fx_hash_one(&"\0"));
    }

    #[test]
    fn fast_map_works_as_hashmap() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_stream_chunking_consistent() {
        // write() as one slice must equal the same bytes as one slice again
        // (sanity for the chunked path), and differ when split points move
        // bytes across chunk boundaries is NOT required by Hasher contract,
        // so we only check self-consistency.
        let mut h1 = FxHasher::default();
        h1.write(b"hello world, this is longer than eight bytes");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world, this is longer than eight bytes");
        assert_eq!(h1.finish(), h2.finish());
    }
}
