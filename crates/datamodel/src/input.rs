//! The two ER settings of the paper (§2): clean-clean and dirty.
//!
//! Profiles get a single *global* id space so blocks, graphs and ground
//! truth can refer to any profile with one `ProfileId`: clean-clean inputs
//! number the first collection `0..|E1|` and the second `|E1|..|E1|+|E2|`
//! (the "dataset separator" idiom of the reference framework).

use crate::collection::EntityCollection;
use crate::entity::{EntityProfile, ProfileId, SourceId};

/// An entity-resolution input: either two duplicate-free collections
/// (clean-clean ER) or a single collection containing duplicates (dirty ER).
#[derive(Debug, Clone)]
pub enum ErInput {
    /// Two duplicate-free collections; only cross-collection pairs are
    /// candidate matches.
    CleanClean {
        /// First collection (global ids `0..d1.len()`).
        d1: EntityCollection,
        /// Second collection (global ids `d1.len()..`).
        d2: EntityCollection,
    },
    /// A single collection with duplicates; all pairs are candidates.
    Dirty(EntityCollection),
}

impl ErInput {
    /// Builds a clean-clean input.
    pub fn clean_clean(d1: EntityCollection, d2: EntityCollection) -> Self {
        ErInput::CleanClean { d1, d2 }
    }

    /// Builds a dirty input.
    pub fn dirty(d: EntityCollection) -> Self {
        ErInput::Dirty(d)
    }

    /// Whether this is a clean-clean input.
    pub fn is_clean_clean(&self) -> bool {
        matches!(self, ErInput::CleanClean { .. })
    }

    /// Total number of profiles across all collections.
    pub fn total_profiles(&self) -> usize {
        match self {
            ErInput::CleanClean { d1, d2 } => d1.len() + d2.len(),
            ErInput::Dirty(d) => d.len(),
        }
    }

    /// For clean-clean inputs, the global id where the second collection
    /// starts (`|E1|`); for dirty inputs, the collection size (i.e. no
    /// profile lies at or beyond the separator).
    pub fn separator(&self) -> u32 {
        match self {
            ErInput::CleanClean { d1, .. } => d1.len() as u32,
            ErInput::Dirty(d) => d.len() as u32,
        }
    }

    /// The source a global profile id belongs to.
    #[inline]
    pub fn source_of(&self, id: ProfileId) -> SourceId {
        match self {
            ErInput::CleanClean { d1, .. } => {
                if (id.0 as usize) < d1.len() {
                    SourceId(0)
                } else {
                    SourceId(1)
                }
            }
            ErInput::Dirty(_) => SourceId(0),
        }
    }

    /// Resolves a global profile id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn profile(&self, id: ProfileId) -> &EntityProfile {
        match self {
            ErInput::CleanClean { d1, d2 } => {
                let i = id.index();
                if i < d1.len() {
                    &d1.profiles()[i]
                } else {
                    &d2.profiles()[i - d1.len()]
                }
            }
            ErInput::Dirty(d) => &d.profiles()[id.index()],
        }
    }

    /// The collection a source id refers to.
    pub fn collection(&self, source: SourceId) -> &EntityCollection {
        match self {
            ErInput::CleanClean { d1, d2 } => match source.0 {
                0 => d1,
                1 => d2,
                _ => panic!("clean-clean input has sources 0 and 1, got {}", source.0),
            },
            ErInput::Dirty(d) => {
                assert_eq!(source.0, 0, "dirty input has a single source 0");
                d
            }
        }
    }

    /// Iterates `(global id, source, profile)` over every profile.
    pub fn iter_profiles(&self) -> impl Iterator<Item = (ProfileId, SourceId, &EntityProfile)> {
        let (first, second): (&EntityCollection, Option<&EntityCollection>) = match self {
            ErInput::CleanClean { d1, d2 } => (d1, Some(d2)),
            ErInput::Dirty(d) => (d, None),
        };
        let sep = first.len();
        first
            .profiles()
            .iter()
            .enumerate()
            .map(|(i, p)| (ProfileId(i as u32), SourceId(0), p))
            .chain(second.into_iter().flat_map(move |d2| {
                d2.profiles()
                    .iter()
                    .enumerate()
                    .map(move |(i, p)| (ProfileId((sep + i) as u32), SourceId(1), p))
            }))
    }

    /// Whether two global ids form a valid comparison in this setting
    /// (cross-collection for clean-clean, any distinct pair for dirty).
    #[inline]
    pub fn comparable(&self, a: ProfileId, b: ProfileId) -> bool {
        if a == b {
            return false;
        }
        match self {
            ErInput::CleanClean { d1, .. } => {
                let sep = d1.len() as u32;
                (a.0 < sep) != (b.0 < sep)
            }
            ErInput::Dirty(_) => true,
        }
    }

    /// Number of comparisons of the naive (brute-force) solution:
    /// `|E1|·|E2|` for clean-clean, `C(|E|,2)` for dirty (§2).
    pub fn naive_comparisons(&self) -> u64 {
        match self {
            ErInput::CleanClean { d1, d2 } => d1.len() as u64 * d2.len() as u64,
            ErInput::Dirty(d) => {
                let n = d.len() as u64;
                n * n.saturating_sub(1) / 2
            }
        }
    }

    /// Total name–value pairs across all collections.
    pub fn nvp(&self) -> usize {
        match self {
            ErInput::CleanClean { d1, d2 } => d1.nvp() + d2.nvp(),
            ErInput::Dirty(d) => d.nvp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_collections() -> (EntityCollection, EntityCollection) {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("a1", [("name", "John")]);
        d1.push_pairs("a2", [("name", "Ellen")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("b1", [("full name", "John Abram")]);
        (d1, d2)
    }

    #[test]
    fn global_ids_span_both_collections() {
        let (d1, d2) = two_collections();
        let input = ErInput::clean_clean(d1, d2);
        assert_eq!(input.total_profiles(), 3);
        assert_eq!(input.separator(), 2);
        assert_eq!(input.source_of(ProfileId(0)), SourceId(0));
        assert_eq!(input.source_of(ProfileId(2)), SourceId(1));
        assert_eq!(input.profile(ProfileId(2)).external_id.as_ref(), "b1");
    }

    #[test]
    fn comparable_respects_setting() {
        let (d1, d2) = two_collections();
        let cc = ErInput::clean_clean(d1.clone(), d2);
        assert!(cc.comparable(ProfileId(0), ProfileId(2)));
        assert!(!cc.comparable(ProfileId(0), ProfileId(1)));
        assert!(!cc.comparable(ProfileId(0), ProfileId(0)));

        let dirty = ErInput::dirty(d1);
        assert!(dirty.comparable(ProfileId(0), ProfileId(1)));
        assert!(!dirty.comparable(ProfileId(1), ProfileId(1)));
    }

    #[test]
    fn naive_comparisons_formulas() {
        let (d1, d2) = two_collections();
        let cc = ErInput::clean_clean(d1.clone(), d2);
        assert_eq!(cc.naive_comparisons(), 2);
        let dirty = ErInput::dirty(d1);
        assert_eq!(dirty.naive_comparisons(), 1);
    }

    #[test]
    fn iter_profiles_yields_global_order() {
        let (d1, d2) = two_collections();
        let input = ErInput::clean_clean(d1, d2);
        let ids: Vec<u32> = input.iter_profiles().map(|(id, _, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let sources: Vec<u8> = input.iter_profiles().map(|(_, s, _)| s.0).collect();
        assert_eq!(sources, vec![0, 0, 1]);
    }
}
