//! Value-transformation functions (the paper's §2.1 `τ`).
//!
//! The default transformation is the one BLAST uses: split attribute values
//! into maximal alphanumeric runs and lowercase them. Optional stop-word
//! removal, a minimum token length and character q-grams (the alternative
//! blocking keys mentioned in §3.2) are supported.

use crate::hash::FastSet;

/// Configurable tokenizer implementing the paper's value transformation
/// function `τ`.
///
/// ```
/// use blast_datamodel::tokenizer::Tokenizer;
/// let t = Tokenizer::new();
/// assert_eq!(t.tokens("Abram st. 30 NY"), vec!["abram", "st", "30", "ny"]);
/// let q = Tokenizer::new().with_qgrams(3);
/// assert_eq!(q.tokens("abcd"), vec!["abc", "bcd"]);
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    lowercase: bool,
    min_token_len: usize,
    stopwords: Option<FastSet<Box<str>>>,
    qgram: Option<usize>,
}

impl Default for Tokenizer {
    /// The BLAST default: lowercased alphanumeric tokens, no stop-word
    /// removal (the paper deliberately applies *no* text pre-processing,
    /// §4.1), every token length accepted.
    fn default() -> Self {
        Self {
            lowercase: true,
            min_token_len: 1,
            stopwords: None,
            qgram: None,
        }
    }
}

impl Tokenizer {
    /// The default BLAST tokenizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keeps the original character case (the paper's example figures keep
    /// case; matching is unaffected as long as both sides agree).
    pub fn preserve_case(mut self) -> Self {
        self.lowercase = false;
        self
    }

    /// Drops tokens shorter than `len` characters.
    pub fn min_token_len(mut self, len: usize) -> Self {
        self.min_token_len = len;
        self
    }

    /// Enables stop-word removal with the given list (matched after
    /// lowercasing when lowercasing is enabled).
    pub fn with_stopwords<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let set = words
            .into_iter()
            .map(|w| {
                let w = w.as_ref();
                if self.lowercase {
                    w.to_lowercase().into_boxed_str()
                } else {
                    Box::from(w)
                }
            })
            .collect();
        self.stopwords = Some(set);
        self
    }

    /// Emits overlapping character q-grams of each token instead of whole
    /// tokens (q ≥ 2); tokens shorter than `q` are emitted unchanged.
    pub fn with_qgrams(mut self, q: usize) -> Self {
        assert!(q >= 2, "q-grams need q >= 2");
        self.qgram = Some(q);
        self
    }

    /// Calls `f` for every token extracted from `value`.
    ///
    /// Tokens are maximal runs of alphanumeric characters; everything else
    /// is a separator (so `"Abram st. 30 NY"` yields `abram`, `st`, `30`,
    /// `ny` with the default configuration).
    pub fn for_each_token(&self, value: &str, mut f: impl FnMut(&str)) {
        let mut scratch = String::new();
        for raw in value.split(|c: char| !c.is_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            let tok: &str = if self.lowercase && raw.chars().any(|c| c.is_uppercase()) {
                scratch.clear();
                for c in raw.chars() {
                    for lc in c.to_lowercase() {
                        scratch.push(lc);
                    }
                }
                &scratch
            } else {
                raw
            };
            if tok.chars().count() < self.min_token_len {
                continue;
            }
            if let Some(stop) = &self.stopwords {
                if stop.contains(tok) {
                    continue;
                }
            }
            match self.qgram {
                None => f(tok),
                Some(q) => emit_qgrams(tok, q, &mut f),
            }
        }
    }

    /// Collects the tokens of `value` into a vector (convenience; the
    /// hot paths use [`Self::for_each_token`] to avoid allocation).
    pub fn tokens(&self, value: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_token(value, |t| out.push(t.to_string()));
        out
    }
}

/// Emits the overlapping character q-grams of `tok`; if the token is shorter
/// than `q`, the token itself is emitted.
fn emit_qgrams(tok: &str, q: usize, f: &mut impl FnMut(&str)) {
    let chars: Vec<(usize, char)> = tok.char_indices().collect();
    if chars.len() < q {
        f(tok);
        return;
    }
    for start in 0..=chars.len() - q {
        let from = chars[start].0;
        let to = if start + q < chars.len() {
            chars[start + q].0
        } else {
            tok.len()
        };
        f(&tok[from..to]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric_and_lowercases() {
        let t = Tokenizer::new();
        assert_eq!(t.tokens("Abram st. 30 NY"), vec!["abram", "st", "30", "ny"]);
        assert_eq!(t.tokens("May 10 1985"), vec!["may", "10", "1985"]);
    }

    #[test]
    fn preserve_case_keeps_original() {
        let t = Tokenizer::new().preserve_case();
        assert_eq!(t.tokens("John Abram Jr"), vec!["John", "Abram", "Jr"]);
    }

    #[test]
    fn empty_and_symbol_only_values_yield_nothing() {
        let t = Tokenizer::new();
        assert!(t.tokens("").is_empty());
        assert!(t.tokens("--- ... !!!").is_empty());
    }

    #[test]
    fn min_token_len_filters() {
        let t = Tokenizer::new().min_token_len(3);
        assert_eq!(t.tokens("a bb ccc dddd"), vec!["ccc", "dddd"]);
    }

    #[test]
    fn stopwords_removed_after_lowercasing() {
        let t = Tokenizer::new().with_stopwords(["The", "of"]);
        assert_eq!(t.tokens("The Lord of the Rings"), vec!["lord", "rings"]);
    }

    #[test]
    fn qgrams_of_token() {
        let t = Tokenizer::new().with_qgrams(3);
        assert_eq!(t.tokens("abcd"), vec!["abc", "bcd"]);
        // shorter than q: emitted unchanged
        assert_eq!(t.tokens("ab"), vec!["ab"]);
    }

    #[test]
    fn unicode_tokens_survive() {
        let t = Tokenizer::new();
        assert_eq!(t.tokens("Modène–Émilie"), vec!["modène", "émilie"]);
    }

    #[test]
    fn figure1_profile_p2_tokens() {
        // Profile p2 of Figure 1a, mail attribute.
        let t = Tokenizer::new();
        assert_eq!(t.tokens("Abram st. 30 NY"), vec!["abram", "st", "30", "ny"]);
    }
}
