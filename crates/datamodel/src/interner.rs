//! Compact string interning.
//!
//! Tokens and attribute names are resolved to dense `u32` [`Symbol`]s once,
//! so all downstream structures (blocks, attribute profiles, MinHash inputs)
//! operate on integers. The interner stores each string exactly once and
//! indexes it by its Fx hash, resolving the rare collisions by comparing the
//! actual strings.

use crate::hash::{fx_hash_one, FastMap};

/// A dense id for an interned string. Symbols are assigned sequentially
/// starting from zero, so they can be used directly as vector indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping strings to dense [`Symbol`]s and back.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    // hash → candidate symbol list (usually length 1).
    by_hash: FastMap<u64, Vec<u32>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner sized for roughly `capacity` distinct strings.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            strings: Vec::with_capacity(capacity),
            by_hash: FastMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let hash = fx_hash_one(&s);
        if let Some(candidates) = self.by_hash.get(&hash) {
            for &idx in candidates {
                if &*self.strings[idx as usize] == s {
                    return Symbol(idx);
                }
            }
        }
        let idx =
            u32::try_from(self.strings.len()).expect("interner overflow (> u32::MAX strings)");
        self.strings.push(s.into());
        self.by_hash.entry(hash).or_default().push(idx);
        Symbol(idx)
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let hash = fx_hash_one(&s);
        self.by_hash.get(&hash).and_then(|candidates| {
            candidates
                .iter()
                .copied()
                .find(|&idx| &*self.strings[idx as usize] == s)
                .map(Symbol)
        })
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol was not produced by this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    #[inline]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no string has been interned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Estimated resident heap footprint in bytes: the string payloads,
    /// their `Box<str>` slots, and an approximation of the hash-index
    /// buckets (capacities where available, lengths otherwise).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        let slots = self.strings.capacity() * size_of::<Box<str>>();
        let buckets = self.by_hash.capacity() * (size_of::<u64>() + size_of::<Vec<u32>>())
            + self
                .by_hash
                .values()
                .map(|v| v.capacity() * size_of::<u32>())
                .sum::<usize>();
        payload + slots + buckets
    }

    /// Iterates over `(Symbol, &str)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("abram");
        let b = i.intern("abram");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_resolve() {
        let mut i = Interner::new();
        let a = i.intern("ellen");
        let b = i.intern("smith");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(i.resolve(a), "ellen");
        assert_eq!(i.resolve(b), "smith");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    proptest! {
        #[test]
        fn prop_intern_resolve_roundtrip(strings in proptest::collection::vec(".{0,12}", 0..50)) {
            let mut i = Interner::new();
            let syms: Vec<_> = strings.iter().map(|s| i.intern(s)).collect();
            for (s, sym) in strings.iter().zip(&syms) {
                prop_assert_eq!(i.resolve(*sym), s.as_str());
            }
            // Distinct strings get distinct symbols; equal strings get equal ones.
            for (a, sa) in strings.iter().zip(&syms) {
                for (b, sb) in strings.iter().zip(&syms) {
                    prop_assert_eq!(a == b, sa == sb);
                }
            }
        }

        #[test]
        fn prop_len_counts_distinct(strings in proptest::collection::vec("[a-c]{0,3}", 0..40)) {
            let mut i = Interner::new();
            for s in &strings {
                i.intern(s);
            }
            let distinct: std::collections::HashSet<_> = strings.iter().collect();
            prop_assert_eq!(i.len(), distinct.len());
        }
    }
}
