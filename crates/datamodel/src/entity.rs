//! Entity profiles: the paper's §2 model.
//!
//! An *entity profile* is a tuple of a unique identifier and a set of
//! name–value pairs ⟨a, v⟩. Attribute names are interned per collection
//! (see [`crate::collection::EntityCollection`]); values are free text.

use crate::interner::Symbol;

/// Identifier of a profile. In an [`crate::input::ErInput`] profile ids are
/// *global*: clean-clean inputs number the first collection `0..|E1|` and the
/// second `|E1|..|E1|+|E2|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileId(pub u32);

impl ProfileId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an attribute *within one collection* (an interned attribute
/// name). The pair `(SourceId, AttributeId)` is globally unambiguous.
pub type AttributeId = Symbol;

/// Which collection a profile/attribute belongs to (0 or 1; dirty ER uses 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u8);

/// An entity profile: external identifier plus name–value pairs.
///
/// Multiple pairs may share the same attribute (multi-valued attributes are
/// common in Web data, e.g. several `actor` values on a movie profile).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntityProfile {
    /// Identifier carried over from the original data source (used to join
    /// with ground truth, never for indexing).
    pub external_id: Box<str>,
    /// The ⟨attribute, value⟩ pairs of this profile.
    pub values: Vec<(AttributeId, Box<str>)>,
}

impl EntityProfile {
    /// Creates a profile with the given external id and no values.
    pub fn new(external_id: impl Into<Box<str>>) -> Self {
        Self {
            external_id: external_id.into(),
            values: Vec::new(),
        }
    }

    /// Appends a name–value pair.
    pub fn push(&mut self, attribute: AttributeId, value: impl Into<Box<str>>) {
        self.values.push((attribute, value.into()));
    }

    /// Number of name–value pairs (the paper's `nvp` contribution of this
    /// profile).
    #[inline]
    pub fn nvp(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the values of a given attribute.
    pub fn values_of(&self, attribute: AttributeId) -> impl Iterator<Item = &str> {
        self.values
            .iter()
            .filter(move |(a, _)| *a == attribute)
            .map(|(_, v)| &**v)
    }

    /// Whether the profile has no values at all (profiles with only missing
    /// data; generators may produce them and blocking must tolerate them).
    #[inline]
    pub fn is_blank(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_values() {
        let name = Symbol(0);
        let year = Symbol(1);
        let mut p = EntityProfile::new("p1");
        p.push(name, "John Abram Jr");
        p.push(year, "1985");
        p.push(name, "J. Abram");
        assert_eq!(p.nvp(), 3);
        let names: Vec<_> = p.values_of(name).collect();
        assert_eq!(names, vec!["John Abram Jr", "J. Abram"]);
        assert_eq!(p.values_of(year).count(), 1);
        assert!(!p.is_blank());
    }

    #[test]
    fn blank_profile() {
        let p = EntityProfile::new("empty");
        assert!(p.is_blank());
        assert_eq!(p.nvp(), 0);
    }

    #[test]
    fn profile_id_ordering_matches_numeric() {
        assert!(ProfileId(3) < ProfileId(10));
        assert_eq!(ProfileId(7).index(), 7);
    }
}
