//! Entity collections: sets of profiles sharing an attribute namespace.

use crate::entity::{AttributeId, EntityProfile, SourceId};
use crate::interner::Interner;

/// A set of entity profiles from one data source.
///
/// Attribute names are interned per collection: the same name in two
/// different collections denotes two different attributes (the paper's
/// attribute-match induction operates on the *pair* space `A_E1 × A_E2`).
#[derive(Debug, Clone)]
pub struct EntityCollection {
    source: SourceId,
    attributes: Interner,
    profiles: Vec<EntityProfile>,
}

impl EntityCollection {
    /// Creates an empty collection for `source`.
    pub fn new(source: SourceId) -> Self {
        Self {
            source,
            attributes: Interner::new(),
            profiles: Vec::new(),
        }
    }

    /// The source this collection came from.
    #[inline]
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Interns an attribute name, returning its id.
    pub fn attribute(&mut self, name: &str) -> AttributeId {
        self.attributes.intern(name)
    }

    /// Looks up an attribute id without creating it.
    pub fn attribute_id(&self, name: &str) -> Option<AttributeId> {
        self.attributes.get(name)
    }

    /// Resolves an attribute id back to its name.
    pub fn attribute_name(&self, id: AttributeId) -> &str {
        self.attributes.resolve(id)
    }

    /// Number of distinct attribute names (the paper's |A|).
    #[inline]
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Iterates over all attribute ids.
    pub fn attribute_ids(&self) -> impl Iterator<Item = AttributeId> + '_ {
        self.attributes.iter().map(|(sym, _)| sym)
    }

    /// Adds a profile, returning its local index within this collection.
    pub fn push(&mut self, profile: EntityProfile) -> usize {
        self.profiles.push(profile);
        self.profiles.len() - 1
    }

    /// Number of profiles (the paper's |E|).
    #[inline]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the collection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profiles, in insertion order (local index = position).
    #[inline]
    pub fn profiles(&self) -> &[EntityProfile] {
        &self.profiles
    }

    /// Mutable access to the profiles (used by generators to inject noise).
    #[inline]
    pub fn profiles_mut(&mut self) -> &mut [EntityProfile] {
        &mut self.profiles
    }

    /// Total number of name–value pairs across all profiles (the paper's
    /// `nvp` column of Table 2).
    pub fn nvp(&self) -> usize {
        self.profiles.iter().map(EntityProfile::nvp).sum()
    }

    /// Convenience builder: adds a profile from `(attribute name, value)`
    /// string pairs, interning the names.
    pub fn push_pairs<'a>(
        &mut self,
        external_id: &str,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> usize {
        let mut profile = EntityProfile::new(external_id);
        for (name, value) in pairs {
            let attr = self.attribute(name);
            profile.push(attr, value);
        }
        self.push(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EntityCollection {
        let mut c = EntityCollection::new(SourceId(0));
        c.push_pairs("p1", [("name", "John Abram Jr"), ("year", "1985")]);
        c.push_pairs("p2", [("name", "Ellen Smith"), ("mail", "Abram st. 30 NY")]);
        c
    }

    #[test]
    fn attribute_interning_shared_across_profiles() {
        let c = sample();
        assert_eq!(c.attribute_count(), 3); // name, year, mail
        assert_eq!(c.len(), 2);
        assert_eq!(c.nvp(), 4);
    }

    #[test]
    fn attribute_roundtrip() {
        let mut c = EntityCollection::new(SourceId(1));
        let a = c.attribute("title");
        assert_eq!(c.attribute_name(a), "title");
        assert_eq!(c.attribute_id("title"), Some(a));
        assert_eq!(c.attribute_id("missing"), None);
    }

    #[test]
    fn attribute_ids_enumerates_all() {
        let c = sample();
        assert_eq!(c.attribute_ids().count(), 3);
    }
}
