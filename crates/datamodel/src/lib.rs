//! Core data model substrate for the BLAST entity-resolution workspace.
//!
//! This crate provides the building blocks every other crate relies on:
//!
//! * [`hash`] — a fast, deterministic Fx-style hasher plus `FastMap`/`FastSet`
//!   aliases used throughout the hot paths (token maps, block indexes,
//!   neighbour accumulators).
//! * [`interner`] — compact string interning so tokens and attribute names
//!   are handled as dense `u32` ids.
//! * [`entity`] / [`collection`] — entity profiles (sets of name–value
//!   pairs) and entity collections, the paper's §2 model.
//! * [`input`] — the two ER settings of the paper: *clean-clean* (two
//!   duplicate-free collections) and *dirty* (one collection with
//!   duplicates), with a single global profile-id space.
//! * [`tokenizer`] — the value-transformation functions of §2.1
//!   (tokenization, lowercasing, optional stop-words, q-grams).
//! * [`ground_truth`] — the set of known duplicate pairs used for
//!   PC/PQ evaluation and for training supervised meta-blocking.
//! * [`parallel`] — tiny std-scoped-thread helpers (contiguous chunks and
//!   a work-stealing scheduler) to parallelise embarrassingly parallel
//!   loops (attribute-pair similarity, node-centric weighting).

pub mod collection;
pub mod entity;
pub mod ground_truth;
pub mod hash;
pub mod input;
pub mod interner;
pub mod parallel;
pub mod tokenizer;

pub use collection::EntityCollection;
pub use entity::{AttributeId, EntityProfile, ProfileId, SourceId};
pub use ground_truth::GroundTruth;
pub use hash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use input::ErInput;
pub use interner::{Interner, Symbol};
pub use tokenizer::Tokenizer;
