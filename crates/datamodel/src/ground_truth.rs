//! Ground truth: the set of known duplicate pairs `D_E` (§2).

use crate::entity::ProfileId;
use crate::hash::FastSet;

/// A set of matching profile pairs, stored with normalised order
/// (`min(id), max(id)`), over the *global* profile-id space of an
/// [`crate::input::ErInput`].
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    pairs: FastSet<(ProfileId, ProfileId)>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalises a pair to `(min, max)`.
    #[inline]
    pub fn normalise(a: ProfileId, b: ProfileId) -> (ProfileId, ProfileId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Records that `a` and `b` match. Self-pairs are ignored.
    pub fn insert(&mut self, a: ProfileId, b: ProfileId) {
        if a != b {
            self.pairs.insert(Self::normalise(a, b));
        }
    }

    /// Whether `a` and `b` are a known match.
    #[inline]
    pub fn is_match(&self, a: ProfileId, b: ProfileId) -> bool {
        self.pairs.contains(&Self::normalise(a, b))
    }

    /// The number of known duplicates (the paper's |D_E|).
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no matches are recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over all matching pairs (normalised order).
    pub fn iter(&self) -> impl Iterator<Item = (ProfileId, ProfileId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Splits the ground truth deterministically into (train, test) by taking
    /// every k-th pair (sorted) into the training set until `fraction` of the
    /// matches is reached — used by supervised meta-blocking (§4.1.1 uses
    /// 10 % of the matched profiles as training data).
    pub fn split_train(&self, fraction: f64) -> (GroundTruth, GroundTruth) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mut sorted: Vec<_> = self.pairs.iter().copied().collect();
        sorted.sort_unstable();
        let n_train = ((sorted.len() as f64) * fraction).round() as usize;
        let stride = sorted
            .len()
            .checked_div(n_train)
            .map_or(usize::MAX, |s| s.max(1));
        let mut train = GroundTruth::new();
        let mut test = GroundTruth::new();
        for (i, (a, b)) in sorted.into_iter().enumerate() {
            if i % stride == 0 && train.len() < n_train {
                train.insert(a, b);
            } else {
                test.insert(a, b);
            }
        }
        (train, test)
    }
}

impl FromIterator<(ProfileId, ProfileId)> for GroundTruth {
    fn from_iter<T: IntoIterator<Item = (ProfileId, ProfileId)>>(iter: T) -> Self {
        let mut gt = GroundTruth::new();
        for (a, b) in iter {
            gt.insert(a, b);
        }
        gt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_normalises_and_dedupes() {
        let mut gt = GroundTruth::new();
        gt.insert(ProfileId(5), ProfileId(2));
        gt.insert(ProfileId(2), ProfileId(5));
        assert_eq!(gt.len(), 1);
        assert!(gt.is_match(ProfileId(5), ProfileId(2)));
        assert!(gt.is_match(ProfileId(2), ProfileId(5)));
        assert!(!gt.is_match(ProfileId(2), ProfileId(3)));
    }

    #[test]
    fn self_pairs_ignored() {
        let mut gt = GroundTruth::new();
        gt.insert(ProfileId(1), ProfileId(1));
        assert!(gt.is_empty());
    }

    #[test]
    fn split_train_respects_fraction() {
        let gt: GroundTruth = (0..100u32)
            .map(|i| (ProfileId(i), ProfileId(i + 1000)))
            .collect();
        let (train, test) = gt.split_train(0.1);
        assert_eq!(train.len(), 10);
        assert_eq!(train.len() + test.len(), 100);
        // Disjoint.
        for p in train.iter() {
            assert!(!test.is_match(p.0, p.1));
        }
    }

    #[test]
    fn split_train_zero_and_one() {
        let gt: GroundTruth = (0..10u32)
            .map(|i| (ProfileId(i), ProfileId(i + 100)))
            .collect();
        let (train, test) = gt.split_train(0.0);
        assert_eq!(train.len(), 0);
        assert_eq!(test.len(), 10);
        let (train, test) = gt.split_train(1.0);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 0);
    }

    proptest! {
        #[test]
        fn prop_split_partitions(pairs in proptest::collection::hash_set((0u32..500, 500u32..1000), 0..60), frac in 0.0f64..1.0) {
            let gt: GroundTruth = pairs.iter().map(|&(a, b)| (ProfileId(a), ProfileId(b))).collect();
            let total = gt.len();
            let (train, test) = gt.split_train(frac);
            prop_assert_eq!(train.len() + test.len(), total);
            for p in train.iter() {
                prop_assert!(gt.is_match(p.0, p.1));
                prop_assert!(!test.is_match(p.0, p.1));
            }
        }
    }
}
