//! Regenerates Table 5 (the dbp comparison with LSH-starred variants).
fn main() {
    print!("{}", blast_bench::experiments::table5(blast_bench::scale()));
}
