//! §4.2.2's time-saved argument: executing the comparisons of the original
//! (cleaned) block collection vs only BLAST's retained comparisons, with the
//! paper's simple profile-Jaccard matcher. The paper reports ~2 h vs ~50 h
//! on dbp; the ratio is the point, not the absolute numbers.

use blast_core::config::BlastConfig;
use blast_core::pipeline::BlastPipeline;
use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast_matcher::evaluation::evaluate_matches;
use blast_matcher::matcher::JaccardMatcher;
use std::time::Instant;

fn main() {
    let scale = blast_bench::scale();
    println!("## ER time saved by meta-blocking (§4.2.2), scale {scale}");
    println!(
        "{:<6} {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} {:>8}",
        "", "cmp(blocks)", "time", "F1", "cmp(Blast)", "time", "F1", "speedup"
    );
    for preset in [
        CleanCleanPreset::Ar1,
        CleanCleanPreset::Prd,
        CleanCleanPreset::Mov,
    ] {
        let spec = clean_clean_preset(preset).scaled(scale * 0.5);
        let (input, gt) = generate_clean_clean(&spec);
        let pipeline = BlastPipeline::new(BlastConfig::default());
        let outcome = pipeline.run(&input);
        let matcher = JaccardMatcher::new(0.35);

        let t0 = Instant::now();
        let full = matcher.match_blocks(&input, &outcome.blocks);
        let t_full = t0.elapsed();
        let q_full = evaluate_matches(&full.matches, &gt);

        let t0 = Instant::now();
        let pruned = matcher.match_pairs(&input, &outcome.pairs);
        let t_pruned = t0.elapsed();
        let q_pruned = evaluate_matches(&pruned.matches, &gt);

        println!(
            "{:<6} {:>12} {:>10.2?} {:>10.3} | {:>12} {:>10.2?} {:>10.3} {:>7.1}x",
            preset.label(),
            full.comparisons,
            t_full,
            q_full.f1,
            pruned.comparisons,
            t_pruned,
            q_pruned.f1,
            t_full.as_secs_f64() / t_pruned.as_secs_f64().max(1e-9),
        );
    }
}
