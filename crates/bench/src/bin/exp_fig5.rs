//! Regenerates Figure 5 (the LSH S-curve, r = 5, b = 30).
fn main() {
    print!("{}", blast_bench::experiments::fig5());
}
