//! Regenerates Table 7 (dirty ER: census, cora, cddb).
fn main() {
    print!("{}", blast_bench::experiments::table7(blast_bench::scale()));
}
