//! Observability overhead: the instrumented commit path vs the
//! `blast_obs::set_enabled(false)` early-out baseline.
//!
//! Streams a scaled census collection through the incremental pipeline in
//! micro-batches, measuring the whole stream's wall clock with metric
//! recording **on** (the default — per-pipeline commit telemetry plus the
//! process-wide scheduler/CSR/treap instruments) and **off** (every record
//! call reduced to one relaxed atomic load-and-branch). Reps are
//! interleaved on/off and the **minimum** per mode is compared, so the
//! recorded ratio reflects the floor cost of the instrumentation rather
//! than scheduler noise; CI asserts `overhead_ratio <= ceiling` off the
//! JSON.
//!
//! A micro section times the raw primitives (counter add, histogram
//! record, full `CommitMetrics::record`, registry snapshot) in ns/op —
//! the same quantities `benches/bench_obs.rs` tracks under criterion.
//!
//! Writes `BENCH_obs.json`.

use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast_datamodel::entity::SourceId;
use blast_datamodel::input::ErInput;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use blast_obs::{CommitMetrics, CommitPhases, CommitRecord};
use std::fmt::Write as _;
use std::time::Instant;

/// On/off rep pairs; the minimum of each side is compared.
const REPS: usize = 5;
/// Accepted instrumented/baseline wall-clock ratio (asserted by CI).
const CEILING: f64 = 1.05;

/// One full stream through a fresh pipeline; returns (wall secs, commits).
fn stream_once(rows: &[(String, Vec<(String, String)>)], batch_size: usize) -> (f64, usize) {
    let mut pipeline = IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    );
    let mut commits = 0usize;
    let t0 = Instant::now();
    for chunk in rows.chunks(batch_size) {
        for (id, pairs) in chunk {
            pipeline.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            );
        }
        pipeline.commit();
        commits += 1;
    }
    (t0.elapsed().as_secs_f64(), commits)
}

/// ns/op of `f` amortised over `iters` calls.
fn ns_per_op(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let scale = blast_bench::scale();
    let spec = dirty_preset(DirtyPreset::Census).scaled(scale);
    let (input, _) = generate_dirty(&spec);
    let ErInput::Dirty(d) = &input else {
        unreachable!()
    };
    let base: Vec<(String, Vec<(String, String)>)> = d
        .profiles()
        .iter()
        .map(|p| {
            (
                p.external_id.to_string(),
                p.values
                    .iter()
                    .map(|(a, v)| (d.attribute_name(*a).to_string(), v.to_string()))
                    .collect(),
            )
        })
        .collect();
    // Replicate the collection (distinct external ids) until one stream is
    // long enough to time: with sub-millisecond streams the on/off ratio
    // measures scheduler jitter, not instrumentation cost.
    let mut rows = base.clone();
    let mut copy = 1usize;
    while rows.len() < 4_000 {
        copy += 1;
        rows.extend(
            base.iter()
                .map(|(id, pairs)| (format!("{id}#c{copy}"), pairs.clone())),
        );
    }
    let batch_size = 32usize;

    println!(
        "## Observability overhead (census preset, scale {scale}, {} profiles, batch {batch_size})",
        rows.len()
    );

    // Warm-up rep (page cache, allocator, lazy registrations), then
    // interleaved on/off reps.
    stream_once(&rows, batch_size);
    let mut on_secs = Vec::with_capacity(REPS);
    let mut off_secs = Vec::with_capacity(REPS);
    let mut commits = 0usize;
    for rep in 0..REPS {
        blast_obs::set_enabled(true);
        let (s, c) = stream_once(&rows, batch_size);
        on_secs.push(s);
        commits = c;
        blast_obs::set_enabled(false);
        let (s, _) = stream_once(&rows, batch_size);
        off_secs.push(s);
        blast_obs::set_enabled(true);
        println!(
            "rep {}: instrumented {:.4}s  baseline {:.4}s",
            rep + 1,
            on_secs[rep],
            off_secs[rep]
        );
    }
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let instrumented_secs = min(&on_secs);
    let baseline_secs = min(&off_secs);
    let overhead_ratio = instrumented_secs / baseline_secs.max(1e-12);
    println!(
        "min instrumented {instrumented_secs:.4}s  min baseline {baseline_secs:.4}s  ratio {overhead_ratio:.4} (ceiling {CEILING})"
    );

    // Micro primitives, ns/op.
    let metrics = CommitMetrics::new();
    let counter = metrics.registry().counter("micro.counter");
    let hist = metrics
        .registry()
        .histogram_with_unit("micro.hist_secs", 1e-9);
    let phases = CommitPhases {
        index_secs: 1.1e-4,
        cleaning_secs: 2.3e-4,
        snapshot_secs: 0.4e-4,
        repair_secs: 1.9e-4,
        reweigh_secs: 0.2e-4,
        decision_secs: 0.6e-4,
    };
    let counter_add_ns = ns_per_op(4_000_000, |i| counter.add(i & 3));
    let histogram_record_ns = ns_per_op(4_000_000, |i| hist.record(1 + i * 997));
    let commit_record_ns = ns_per_op(400_000, |_| {
        metrics.record(&CommitRecord {
            phases: Some(&phases),
            tier: 1,
            dirty_nodes: 17,
            patched_rows: 9,
            retention_flips: 3,
            retained: 4096,
            live_edges: 12_000,
            ..CommitRecord::default()
        })
    });
    let snapshot_ns = ns_per_op(2_000, |_| {
        std::hint::black_box(metrics.snapshot().samples().len());
    });
    println!(
        "micro: counter add {counter_add_ns:.1} ns/op, histogram record {histogram_record_ns:.1} ns/op, \
         commit record {commit_record_ns:.1} ns/op, snapshot {snapshot_ns:.0} ns"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"preset\": \"census\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"profiles\": {},", rows.len());
    let _ = writeln!(json, "  \"batch_size\": {batch_size},");
    let _ = writeln!(json, "  \"commits\": {commits},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"instrumented_secs\": {instrumented_secs:.6},");
    let _ = writeln!(json, "  \"baseline_secs\": {baseline_secs:.6},");
    let _ = writeln!(json, "  \"overhead_ratio\": {overhead_ratio:.4},");
    let _ = writeln!(json, "  \"ceiling\": {CEILING},");
    let _ = writeln!(
        json,
        "  \"micro\": {{\"counter_add_ns\": {counter_add_ns:.2}, \"histogram_record_ns\": {histogram_record_ns:.2}, \"commit_record_ns\": {commit_record_ns:.2}, \"snapshot_ns\": {snapshot_ns:.0}}}"
    );
    json.push_str("}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    assert!(
        overhead_ratio <= CEILING,
        "instrumentation overhead {overhead_ratio:.4} exceeds ceiling {CEILING}"
    );
}
