//! Graph-engine throughput benchmark: seeds the repo's perf trajectory.
//!
//! Measures, on a Zipf-skewed dirty collection (cora-style heavy
//! duplication):
//!
//! * the dense scratch-array engine vs the pre-engine hashmap baseline
//!   (edge materialisation throughput, multi- and single-threaded), and
//! * edges/second for every weighting scheme × pruning algorithm through
//!   the fused passes.
//!
//! Writes `BENCH_graph.json` to the working directory (machine-readable,
//! compared across PRs) and prints a human summary. `BLAST_SCALE` scales
//! the collection like the other `exp_*` runners.

use blast_bench::graph_engine::{
    baseline_collect_weighted_edges, baseline_wep_prune, best_time, edges_per_sec,
};
use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::pruning::common::collect_weighted_edges;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_graph::GraphSnapshot;
use std::fmt::Write as _;

const RUNS: usize = 5;

fn main() {
    let scale = blast_bench::scale();
    // ×4 so the default BLAST_SCALE=0.25 lands on the full cora preset —
    // the engine comparison needs a graph big enough to leave the caches.
    let spec = dirty_preset(DirtyPreset::Cora).scaled(scale * 4.0);
    let (input, _) = generate_dirty(&spec);
    let blocks = {
        let b = TokenBlocking::new().build(&input);
        BlockFiltering::new().filter(&BlockPurging::new().purge(&b))
    };
    let mut ctx = GraphSnapshot::build(&blocks);
    ctx.ensure_degrees();
    let edges = ctx.total_edges();
    let threads = ctx.threads();

    println!("## Graph-engine throughput (Zipf-skewed `cora` preset, scale {scale})");
    println!(
        "profiles = {}, blocks = {}, edges = {edges}, threads = {threads}",
        ctx.total_profiles(),
        ctx.total_blocks()
    );

    // Headline: a full WEP pruning call, old engine (fold + collect, two
    // hashmap traversals) vs the fused single-traversal dense engine.
    let t_wep_base = best_time(RUNS, || {
        baseline_wep_prune(&ctx, &WeightingScheme::Arcs).len()
    });
    let t_wep_fused = best_time(RUNS, || {
        PruningAlgorithm::Wep
            .prune(&ctx, &WeightingScheme::Arcs)
            .len()
    });
    let wep_base_eps = edges_per_sec(edges, t_wep_base);
    let wep_fused_eps = edges_per_sec(edges, t_wep_fused);
    let speedup = wep_fused_eps / wep_base_eps;

    // Secondary: raw edge materialisation (one traversal each), isolating
    // the accumulator swap from the pass fusion.
    let t_base = best_time(RUNS, || {
        baseline_collect_weighted_edges(&ctx, &WeightingScheme::Arcs)
    });
    let t_dense = best_time(RUNS, || {
        collect_weighted_edges(&ctx, &WeightingScheme::Arcs)
    });
    let eps_base = edges_per_sec(edges, t_base);
    let eps_dense = edges_per_sec(edges, t_dense);
    let mat_speedup = eps_dense / eps_base;

    println!();
    println!("engine comparison (ARCS weighting, best of {RUNS}, {threads} thread(s)):");
    println!(
        "  WEP pruning call, hashmap baseline   {:>12.0} edges/s",
        wep_base_eps
    );
    println!(
        "  WEP pruning call, fused dense engine {:>12.0} edges/s  → {speedup:.2}×",
        wep_fused_eps
    );
    println!(
        "  edge materialisation, hashmap        {:>12.0} edges/s",
        eps_base
    );
    println!(
        "  edge materialisation, dense scratch  {:>12.0} edges/s  → {mat_speedup:.2}×",
        eps_dense
    );

    // Scheme × pruning matrix through the fused engine passes.
    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}   (edges/s)",
        "", "wep", "cep", "wnp1", "wnp2", "cnp1", "cnp2"
    );
    let mut matrix = Vec::new();
    for scheme in WeightingScheme::ALL {
        let mut ctx = GraphSnapshot::build(&blocks);
        if scheme.requires_degrees() {
            ctx.ensure_degrees();
        }
        let mut row_cells = String::new();
        for algorithm in PruningAlgorithm::ALL {
            let t = best_time(RUNS, || algorithm.prune(&ctx, &scheme).len());
            let eps = edges_per_sec(edges, t);
            write!(row_cells, " {:>10.0}", eps).unwrap();
            matrix.push((scheme.name(), algorithm.label(), t.as_secs_f64() * 1e3, eps));
        }
        println!("{:<6}{row_cells}", scheme.name());
    }

    // BENCH_graph.json — hand-rolled (the workspace has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"preset\": \"cora\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"profiles\": {},", ctx.total_profiles());
    let _ = writeln!(json, "  \"blocks\": {},", ctx.total_blocks());
    let _ = writeln!(json, "  \"edges\": {edges},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(
        json,
        "    \"wep_hashmap_edges_per_sec\": {wep_base_eps:.0},"
    );
    let _ = writeln!(json, "    \"wep_fused_edges_per_sec\": {wep_fused_eps:.0},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "    \"materialise_hashmap_edges_per_sec\": {eps_base:.0},"
    );
    let _ = writeln!(
        json,
        "    \"materialise_dense_edges_per_sec\": {eps_dense:.0},"
    );
    let _ = writeln!(json, "    \"materialise_speedup\": {mat_speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pruning\": [");
    for (i, (scheme, algorithm, millis, eps)) in matrix.iter().enumerate() {
        let comma = if i + 1 == matrix.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{scheme}\", \"algorithm\": \"{algorithm}\", \"millis\": {millis:.3}, \"edges_per_sec\": {eps:.0}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_graph.json", &json).expect("write BENCH_graph.json");
    println!();
    println!("wrote BENCH_graph.json");
}
