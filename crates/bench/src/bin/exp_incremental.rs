//! Incremental repair vs full recompute across micro-batch sizes.
//!
//! Seeds the incremental pipeline with half of a Zipf-skewed dirty
//! collection, then streams the rest in micro-batches of varying size. For
//! every configuration it measures
//!
//! * **incremental**: `insert` + `commit` (the repair ladder — dirty
//!   neighbourhood, cache reweigh, or degraded full) per micro-batch, and
//! * **full recompute**: what a batch deployment must do at the same
//!   commit points — re-run Token Blocking, purging, filtering and pruning
//!   on the whole collection.
//!
//! Both paths produce bit-identical candidate sets (asserted at the end of
//! every run — the subsystem's contract). The global-statistic schemes
//! (EJS, ECBS, χ²) additionally record **per-tier commit counts**: with
//! delta-maintained degrees and the cache-driven reweigh tier they must
//! never land on the degraded-full tier over the streamed window (CI
//! asserts `commits_full == 0` for them off the JSON), and so must CNP,
//! whose per-node budget drifts with the collection. Writes
//! `BENCH_incremental.json` and prints a human summary. `BLAST_SCALE`
//! scales the collection like the other `exp_*` runners.
//!
//! A second, memory-diet phase bulk-streams the scaled census presets
//! (`BLAST_MEMORY_PRESETS`, default `census,census100k`; `census1m` is the
//! 10⁶-profile run) with commits at the quarter points and writes
//! `BENCH_memory.json`: kernel peak/current RSS plus the pipeline's
//! structure-level footprint (bytes per profile, bytes per edge, interned
//! tokens, cached accumulators).

use blast_core::weighting::ChiSquaredWeigher;
use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::SourceId;
use blast_datamodel::input::ErInput;
use blast_graph::context::{EdgeAccum, GraphSnapshot};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::{EdgeWeigher, WeightDeps, WeightingScheme};
use blast_incremental::{CleaningConfig, CommitTimings, IncrementalPipeline, IncrementalPruning};
use blast_obs::CommitTotals;
use std::fmt::Write as _;
use std::time::Instant;

/// The streamed tail is capped so size-1 micro-batches stay tractable.
const MAX_STREAMED: usize = 192;

/// The weighers the bench sweeps: the traditional schemes plus BLAST's χ²
/// (the incremental pipeline is generic over `EdgeWeigher`; the bench
/// needs one `Copy` type covering both).
#[derive(Debug, Clone, Copy)]
enum BenchWeigher {
    Scheme(WeightingScheme),
    Chi2,
}

impl EdgeWeigher for BenchWeigher {
    fn weight(&self, ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64 {
        match self {
            BenchWeigher::Scheme(s) => s.weight(ctx, u, v, acc),
            BenchWeigher::Chi2 => ChiSquaredWeigher::without_entropy().weight(ctx, u, v, acc),
        }
    }

    fn requires_degrees(&self) -> bool {
        matches!(self, BenchWeigher::Scheme(s) if s.requires_degrees())
    }

    fn global_deps(&self) -> WeightDeps {
        match self {
            BenchWeigher::Scheme(s) => s.global_deps(),
            BenchWeigher::Chi2 => WeightDeps::ALL,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            BenchWeigher::Scheme(s) => s.name(),
            BenchWeigher::Chi2 => "chi2",
        }
    }
}

struct RunResult {
    scheme: &'static str,
    pruning: String,
    batch_size: usize,
    commits: usize,
    incremental_secs: f64,
    full_secs: f64,
    speedup: f64,
    final_candidates: usize,
    /// Per-phase split of the incremental path (index maintenance /
    /// cleaning / snapshot patch / graph repair / reweigh / decision),
    /// summed over all commits.
    phases: CommitTimings,
    /// Mean per-commit phase split over the first and second half of the
    /// streamed window — flat halves make the removed linear terms (the
    /// per-commit CSR rebuild, the full-edge-list decision re-merge, and
    /// now EJS's per-commit degree pass) visibly gone: per-commit cost
    /// tracks the dirty neighbourhood (plus, for drifting global schemes,
    /// the cache reweigh), not a from-scratch re-accumulation.
    phases_first_half: CommitTimings,
    phases_second_half: CommitTimings,
    /// Total CSR rows patched across the run (snapshot delta volume).
    patched_rows: usize,
    /// Total retention flips / frontier crossers across the run.
    retention_flips: usize,
    threshold_crossers: usize,
    /// Repair-ladder tier counts over the streamed commits
    /// (dirty / reweigh / full). CI asserts `full == 0` for the
    /// global-statistic schemes.
    tier_commits: [usize; 3],
    /// Clean edges swept / re-keyed by the reweigh tier across the run.
    edges_swept: usize,
    edges_rekeyed: usize,
    /// The batch-equivalence contract: incremental candidate set ==
    /// from-scratch batch run on the final collection (asserted by CI off
    /// the JSON as well as by this process).
    equivalent: bool,
}

fn run_config(
    rows: &[(String, Vec<(String, String)>)],
    weigher: BenchWeigher,
    pruning: IncrementalPruning,
    batch_size: usize,
) -> RunResult {
    let seed_len = rows.len() / 2;
    let streamed = (rows.len() - seed_len).min(MAX_STREAMED);

    let mut pipeline = IncrementalPipeline::dirty(weigher, pruning, CleaningConfig::default());
    for (id, pairs) in &rows[..seed_len] {
        pipeline.insert(
            SourceId(0),
            id,
            pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
        );
    }
    pipeline.commit();

    // Incremental path: insert + repair per micro-batch. Aggregation reads
    // the pipeline's metrics registry back (snapshot deltas scoped to the
    // streamed window and to each half of it) instead of re-accumulating
    // per-commit outcomes by hand — the same path `blast stream --stats`
    // reports from.
    let base = pipeline.metrics().snapshot();
    let mut commits = 0usize;
    let mut half_snap: Option<blast_obs::MetricsSnapshot> = None;
    let total_batches = rows[seed_len..seed_len + streamed]
        .chunks(batch_size)
        .count();
    let t0 = Instant::now();
    for chunk in rows[seed_len..seed_len + streamed].chunks(batch_size) {
        if commits * 2 >= total_batches && half_snap.is_none() {
            half_snap = Some(pipeline.metrics().snapshot());
        }
        for (id, pairs) in chunk {
            pipeline.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            );
        }
        pipeline.commit();
        commits += 1;
    }
    let incremental_secs = t0.elapsed().as_secs_f64();
    let end = pipeline.metrics().snapshot();
    let half_snap = half_snap.unwrap_or_else(|| end.clone());
    let totals = CommitTotals::from_snapshot(&end.delta_since(&base));
    let first = CommitTotals::from_snapshot(&half_snap.delta_since(&base));
    let second = CommitTotals::from_snapshot(&end.delta_since(&half_snap));
    let phases_first_half = first.phases.mean(first.commits as usize);
    let phases_second_half = second.phases.mean(second.commits as usize);

    // Full-recompute path: the same commit schedule, each commit a batch
    // re-run over the whole collection so far.
    let full_prune = |input: &ErInput, pipeline: &IncrementalPipeline| {
        let blocks = pipeline.batch_blocks(input);
        let mut ctx = GraphSnapshot::build(&blocks);
        if weigher.requires_degrees() {
            ctx.ensure_degrees();
        }
        pruning.batch_prune(&ctx, &weigher).len()
    };
    let mut store = IncrementalPipeline::dirty(weigher, pruning, CleaningConfig::default());
    for (id, pairs) in &rows[..seed_len] {
        store.insert(
            SourceId(0),
            id,
            pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
        );
    }
    let t0 = Instant::now();
    for chunk in rows[seed_len..seed_len + streamed].chunks(batch_size) {
        for (id, pairs) in chunk {
            store.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            );
        }
        let input = store.materialize();
        std::hint::black_box(full_prune(&input, &store));
    }
    let full_secs = t0.elapsed().as_secs_f64();

    // Contract check: the incremental candidate set equals a batch run on
    // the final collection. Recorded as a flag (CI asserts it off the
    // JSON) and asserted after the JSON is written so a violation still
    // leaves the evidence on disk.
    let equivalent = pipeline.retained().pairs() == pipeline.batch_retained().pairs();

    debug_assert_eq!(
        totals.commits as usize, commits,
        "registry window covers the stream"
    );
    RunResult {
        scheme: weigher.name(),
        pruning: pruning.label(),
        batch_size,
        commits,
        incremental_secs,
        full_secs,
        speedup: full_secs / incremental_secs.max(1e-12),
        final_candidates: pipeline.retained().len(),
        phases: totals.phases,
        phases_first_half,
        phases_second_half,
        patched_rows: totals.patched_rows as usize,
        retention_flips: totals.retention_flips as usize,
        threshold_crossers: totals.threshold_crossers as usize,
        tier_commits: totals.tier_commits.map(|c| c as usize),
        edges_swept: totals.edges_swept as usize,
        edges_rekeyed: totals.edges_rekeyed as usize,
        equivalent,
    }
}

/// One multi-core run: the sharded commit path at a pinned thread count.
struct MulticoreRun {
    threads: usize,
    shards: usize,
    commits: usize,
    secs: f64,
    /// Wall-clock speedup vs the single-thread run of the same sweep
    /// (recorded as measured; CI gates on the equivalence flags, not on
    /// magnitudes, so oversubscribed runners stay green).
    speedup: f64,
    /// Merge-frontier (cross-shard) pairs processed across the run.
    frontier_pairs: u64,
    /// Tier split (dirty / reweigh / full) — the sweep is configured to be
    /// reweigh-heavy so the sharded sweep actually runs.
    tier_commits: [usize; 3],
    final_candidates: usize,
    /// The tentpole contract: retained set bit-identical to the
    /// single-thread run AND to a from-scratch batch run.
    equivalent: bool,
}

/// Multi-core phase: stream one reweigh-heavy configuration (EJS / WEP —
/// every commit that drifts a degree re-derives all clean edges, the
/// sharded sweep's hot path) at 1/2/4/8 worker threads over 4 owner
/// shards, asserting bit-identical outcomes against the single-thread run
/// and the batch pipeline.
fn multicore_phase(rows: &[(String, Vec<(String, String)>)]) -> Vec<MulticoreRun> {
    let weigher = BenchWeigher::Scheme(WeightingScheme::Ejs);
    let pruning = IncrementalPruning::Traditional(PruningAlgorithm::Wep);
    let batch_size = 8usize;
    let shards = 4usize;
    let seed_len = rows.len() / 2;
    let streamed = (rows.len() - seed_len).min(MAX_STREAMED);

    let mut runs: Vec<MulticoreRun> = Vec::new();
    let mut reference: Option<blast_graph::retained::RetainedPairs> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut pipeline = IncrementalPipeline::dirty(weigher, pruning, CleaningConfig::default())
            .with_threads(threads)
            .with_shards(shards);
        for (id, pairs) in &rows[..seed_len] {
            pipeline.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            );
        }
        pipeline.commit();
        let base = pipeline.metrics().snapshot();
        let mut commits = 0usize;
        let t0 = Instant::now();
        for chunk in rows[seed_len..seed_len + streamed].chunks(batch_size) {
            for (id, pairs) in chunk {
                pipeline.insert(
                    SourceId(0),
                    id,
                    pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
                );
            }
            pipeline.commit();
            commits += 1;
        }
        let secs = t0.elapsed().as_secs_f64();
        let totals = CommitTotals::from_snapshot(&pipeline.metrics().snapshot().delta_since(&base));
        let retained = pipeline.retained().clone();
        let equivalent = reference
            .as_ref()
            .is_none_or(|r| r.pairs() == retained.pairs())
            && retained.pairs() == pipeline.batch_retained().pairs();
        let baseline = runs.first().map_or(secs, |r| r.secs);
        runs.push(MulticoreRun {
            threads,
            shards,
            commits,
            secs,
            speedup: baseline / secs.max(1e-12),
            frontier_pairs: totals.frontier_pairs,
            tier_commits: totals.tier_commits.map(|c| c as usize),
            final_candidates: retained.len(),
            equivalent,
        });
        reference.get_or_insert(retained);
    }
    runs
}

/// One memory-diet run: bulk-stream a preset with commits at the quarter
/// points, recording the pipeline's structure footprint and the kernel's
/// RSS accounting (see `BENCH_memory.json`).
struct MemoryRun {
    preset: &'static str,
    scheme: &'static str,
    pruning: String,
    profiles: usize,
    commits: usize,
    elapsed_secs: f64,
    /// Kernel VmHWM / VmRSS (None off Linux).
    peak_rss_bytes: Option<u64>,
    current_rss_bytes: Option<u64>,
    fp: blast_incremental::MemoryFootprint,
    retained: usize,
    bytes_per_profile: f64,
    bytes_per_edge: f64,
    /// Checked against a from-scratch batch run when the collection is
    /// small enough that the second full copy cannot distort the RSS
    /// figures (None = skipped at scale; the contract is pinned by the
    /// main phase and the test suites).
    equivalent: Option<bool>,
    /// (profiles inserted, estimated structure bytes, current RSS) at each
    /// commit point.
    trajectory: Vec<(usize, usize, Option<u64>)>,
    /// Commits that landed on the degraded-full tier. The very first
    /// commit initialises the blocker (structural) — beyond that, a
    /// budgeted run must never degrade.
    commits_full: usize,
    /// Whether the kernel's peak-RSS high-water mark was reset before this
    /// run; peak comparisons across runs are only meaningful when both
    /// flags are true.
    rss_reset: bool,
    /// Cold-tier figures of a budgeted run (`None` = unbudgeted).
    cold: Option<ColdRun>,
}

/// Cold-tier accounting of one budgeted memory run.
struct ColdRun {
    budget_bytes: usize,
    spill: bool,
    evictions: u64,
    rehydrations: u64,
    /// Hot bytes of the three evictable structures, per profile.
    hot_bytes_per_profile: f64,
    /// Cold frame payload (in-memory arena + spill file), per profile.
    cold_bytes_per_profile: f64,
    spilled_bytes: usize,
}

/// Memory presets come from `BLAST_MEMORY_PRESETS` (comma-separated
/// labels; `census1m` is the full 10⁶-profile run — minutes, so the
/// default sticks to census + census100k).
fn memory_presets() -> Vec<DirtyPreset> {
    let labels =
        std::env::var("BLAST_MEMORY_PRESETS").unwrap_or_else(|_| "census,census100k".into());
    labels
        .split(',')
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let found = DirtyPreset::ALL
                .iter()
                .chain(DirtyPreset::SCALED.iter())
                .copied()
                .find(|p| p.label() == l);
            if found.is_none() {
                eprintln!("warning: unknown memory preset {l:?} (skipped)");
            }
            found
        })
        .collect()
}

fn run_memory(
    d: &EntityCollection,
    preset: &'static str,
    weigher: BenchWeigher,
    pruning: IncrementalPruning,
    residency: Option<blast_incremental::ResidencyPolicy>,
) -> MemoryRun {
    // Bound block sizes at ~64 members regardless of the profile count, so
    // the footprint scales with the structures rather than with one
    // stop-word block, and per-commit work stays bounded.
    let cleaning = CleaningConfig {
        purging: true,
        purge_fraction: 64.0 / d.len() as f64,
        filtering: true,
        filter_ratio: 0.8,
    };
    // Reset the high-water mark so each run's peak covers this run only;
    // recorded so the JSON consumer knows whether peaks are comparable.
    let rss_reset = blast_metrics::reset_peak_rss();
    let mut pipeline = IncrementalPipeline::dirty(weigher, pruning, cleaning);
    if let Some(policy) = residency {
        pipeline = pipeline.with_residency(policy);
    }
    let quarter = (d.len() / 4).max(1);
    let mut commits = 0usize;
    let mut trajectory: Vec<(usize, usize, Option<u64>)> = Vec::new();
    let t0 = Instant::now();
    for (i, p) in d.profiles().iter().enumerate() {
        pipeline.insert(
            SourceId(0),
            &p.external_id,
            p.values.iter().map(|(a, v)| (d.attribute_name(*a), &**v)),
        );
        if (i + 1) % quarter == 0 || i + 1 == d.len() {
            pipeline.commit();
            commits += 1;
            trajectory.push((
                i + 1,
                pipeline.footprint().total_bytes(),
                blast_metrics::current_rss_bytes(),
            ));
        }
    }
    let elapsed_secs = t0.elapsed().as_secs_f64();
    let fp = pipeline.footprint();
    let peak_rss_bytes = blast_metrics::peak_rss_bytes();
    let current_rss_bytes = blast_metrics::current_rss_bytes();
    let retained = pipeline.retained().len();
    // The batch counterpart materialises a second full collection — only
    // run it where that cannot dominate the memory story.
    let equivalent = (d.len() <= 150_000)
        .then(|| pipeline.retained().pairs() == pipeline.batch_retained().pairs());
    let totals = CommitTotals::from_snapshot(&pipeline.metrics().snapshot());
    let cold = residency.map(|policy| {
        let stats = pipeline.cold_stats();
        let hot_bytes = fp.index_bytes + fp.snapshot_bytes + fp.blocker_bytes;
        ColdRun {
            budget_bytes: policy.budget_bytes,
            spill: policy.spill,
            evictions: stats.evictions,
            rehydrations: stats.rehydrations,
            hot_bytes_per_profile: hot_bytes as f64 / d.len().max(1) as f64,
            cold_bytes_per_profile: (stats.cold_bytes + stats.spilled_bytes) as f64
                / d.len().max(1) as f64,
            spilled_bytes: stats.spilled_bytes,
        }
    });
    MemoryRun {
        preset,
        scheme: weigher.name(),
        pruning: pruning.label(),
        profiles: d.len(),
        commits,
        elapsed_secs,
        peak_rss_bytes,
        current_rss_bytes,
        fp,
        retained,
        bytes_per_profile: fp.total_bytes() as f64 / d.len().max(1) as f64,
        bytes_per_edge: fp.blocker_bytes as f64 / fp.live_edges.max(retained).max(1) as f64,
        equivalent,
        trajectory,
        commits_full: totals.tier_commits[2] as usize,
        rss_reset,
        cold,
    }
}

fn memory_phase() -> Vec<MemoryRun> {
    let mut runs = Vec::new();
    for preset in memory_presets() {
        let spec = dirty_preset(preset);
        let (input, _) = generate_dirty(&spec);
        let ErInput::Dirty(d) = &input else {
            unreachable!()
        };
        // CBS/WNP1 everywhere (the node-centric diet path); CBS/WEP where
        // the edge-cached treap + adjacency fit a smoke run.
        let mut configs = vec![(
            BenchWeigher::Scheme(WeightingScheme::Cbs),
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        )];
        if d.len() <= 200_000 {
            configs.push((
                BenchWeigher::Scheme(WeightingScheme::Cbs),
                IncrementalPruning::Traditional(PruningAlgorithm::Wep),
            ));
        }
        let print_run = |r: &MemoryRun| {
            println!(
                "{:<10} {:<6} {:<6} {:>9} {:>9.2}s  est {:>7.1} B/profile  peak rss {}{}",
                r.preset,
                r.scheme,
                r.pruning,
                r.profiles,
                r.elapsed_secs,
                r.bytes_per_profile,
                r.peak_rss_bytes.map_or("n/a".to_string(), |b| format!(
                    "{:.1} MiB",
                    b as f64 / (1 << 20) as f64
                )),
                r.cold.as_ref().map_or(String::new(), |c| format!(
                    "  [budget {:.1} MiB: {} evictions, {} rehydrations]",
                    c.budget_bytes as f64 / (1 << 20) as f64,
                    c.evictions,
                    c.rehydrations
                )),
            );
        };
        for (weigher, pruning) in configs {
            let r = run_memory(d, preset.label(), weigher, pruning, None);
            print_run(&r);
            runs.push(r);
        }
        // Budgeted rerun of the WNP1 config: cap the evictable structures
        // (index + snapshot + blocker) at a quarter of what the unbudgeted
        // run used, spill the cold frames to disk, and demand the same
        // answer. This is the bounded-memory configuration CI gates on.
        let baseline = runs
            .iter()
            .rev()
            .find(|r| r.preset == preset.label() && r.pruning == "wnp1" && r.cold.is_none())
            .expect("unbudgeted wnp1 run precedes the budgeted rerun");
        let budget =
            (baseline.fp.index_bytes + baseline.fp.snapshot_bytes + baseline.fp.blocker_bytes) / 4;
        let policy = blast_incremental::ResidencyPolicy {
            budget_bytes: budget,
            idle_commits: 1,
            spill: true,
        };
        let r = run_memory(
            d,
            preset.label(),
            BenchWeigher::Scheme(WeightingScheme::Cbs),
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
            Some(policy),
        );
        print_run(&r);
        runs.push(r);
    }
    runs
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |b| b.to_string())
}

fn memory_json(runs: &[MemoryRun]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let trajectory: Vec<String> = r
            .trajectory
            .iter()
            .map(|&(profiles, est, rss)| {
                format!(
                    "{{\"profiles\": {profiles}, \"estimated_bytes\": {est}, \"current_rss_bytes\": {}}}",
                    opt_u64(rss)
                )
            })
            .collect();
        let cold_tier = r.cold.as_ref().map_or("null".to_string(), |c| {
            format!(
                "{{\"budget_bytes\": {}, \"spill\": {}, \"evictions\": {}, \"rehydrations\": {}, \"hot_bytes_per_profile\": {:.2}, \"cold_bytes_per_profile\": {:.2}, \"spilled_bytes\": {}}}",
                c.budget_bytes,
                c.spill,
                c.evictions,
                c.rehydrations,
                c.hot_bytes_per_profile,
                c.cold_bytes_per_profile,
                c.spilled_bytes,
            )
        });
        let _ = writeln!(
            json,
            "    {{\"preset\": \"{}\", \"scheme\": \"{}\", \"pruning\": \"{}\", \"profiles\": {}, \"commits\": {}, \"commits_full\": {}, \"elapsed_secs\": {:.3}, \"peak_rss_bytes\": {}, \"current_rss_bytes\": {}, \"rss_reset\": {}, \"live_edges\": {}, \"cached_accumulators\": {}, \"interned_tokens\": {}, \"store_bytes\": {}, \"index_bytes\": {}, \"snapshot_bytes\": {}, \"blocker_bytes\": {}, \"cold_bytes\": {}, \"spilled_bytes\": {}, \"estimated_bytes\": {}, \"bytes_per_profile\": {:.2}, \"bytes_per_edge\": {:.2}, \"retained\": {}, \"equivalent\": {}, \"cold_tier\": {}, \"trajectory\": [{}]}}{comma}",
            r.preset,
            r.scheme,
            r.pruning,
            r.profiles,
            r.commits,
            r.commits_full,
            r.elapsed_secs,
            opt_u64(r.peak_rss_bytes),
            opt_u64(r.current_rss_bytes),
            r.rss_reset,
            r.fp.live_edges,
            r.fp.cached_accumulators,
            r.fp.interned_tokens,
            r.fp.store_bytes,
            r.fp.index_bytes,
            r.fp.snapshot_bytes,
            r.fp.blocker_bytes,
            r.fp.cold_bytes,
            r.fp.spilled_bytes,
            r.fp.total_bytes(),
            r.bytes_per_profile,
            r.bytes_per_edge,
            r.retained,
            r.equivalent.map_or("null".to_string(), |e| e.to_string()),
            cold_tier,
            trajectory.join(", "),
        );
    }
    json.push_str("  ]\n}\n");
    json
}

// The phase JSON schema lives in one place now: `CommitTimings` is
// `blast_obs::CommitPhases`, and `bench_json()` carries the exact
// `BENCH_incremental.json` keys.

fn main() {
    let scale = blast_bench::scale();
    let spec = dirty_preset(DirtyPreset::Census).scaled(scale * 2.0);
    let (input, _) = generate_dirty(&spec);
    let ErInput::Dirty(d) = &input else {
        unreachable!()
    };
    // Freeze the rows as (external id, [(attr, value)]) so every
    // configuration replays the identical stream.
    let rows: Vec<(String, Vec<(String, String)>)> = d
        .profiles()
        .iter()
        .map(|p| {
            (
                p.external_id.to_string(),
                p.values
                    .iter()
                    .map(|(a, v)| (d.attribute_name(*a).to_string(), v.to_string()))
                    .collect(),
            )
        })
        .collect();

    println!(
        "## Incremental repair vs full recompute (census preset, scale {scale}, {} profiles, {} streamed)",
        rows.len(),
        (rows.len() - rows.len() / 2).min(MAX_STREAMED),
    );
    println!(
        "{:<6} {:<6} {:>6} {:>8} {:>12} {:>12} {:>9} {:>14}",
        "scheme", "prune", "batch", "commits", "incr(s)", "full(s)", "speedup", "tiers d/r/f"
    );

    // The classic configs plus one per global-statistic scheme: EJS
    // (degrees), ECBS (|B|) and χ² (|B| + per-node counts) must stay off
    // the degraded-full tier for the whole stream — and CNP, whose top-k
    // budget drifts with the collection, must repair budget moves as
    // bounded containment adjustments (reweigh tier), never tier 3.
    let configs: [(BenchWeigher, IncrementalPruning); 7] = [
        (
            BenchWeigher::Scheme(WeightingScheme::Cbs),
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1),
        ),
        (
            BenchWeigher::Scheme(WeightingScheme::Cbs),
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        ),
        (
            BenchWeigher::Scheme(WeightingScheme::Cbs),
            IncrementalPruning::Traditional(PruningAlgorithm::Wep),
        ),
        (
            BenchWeigher::Scheme(WeightingScheme::Js),
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
        ),
        (
            BenchWeigher::Scheme(WeightingScheme::Ejs),
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        ),
        (
            BenchWeigher::Scheme(WeightingScheme::Ecbs),
            IncrementalPruning::Traditional(PruningAlgorithm::Wep),
        ),
        (BenchWeigher::Chi2, IncrementalPruning::blast()),
    ];
    let batch_sizes = [1usize, 8, 64];

    let mut results: Vec<RunResult> = Vec::new();
    for &(weigher, pruning) in &configs {
        for &batch_size in &batch_sizes {
            let r = run_config(&rows, weigher, pruning, batch_size);
            println!(
                "{:<6} {:<6} {:>6} {:>8} {:>12.4} {:>12.4} {:>8.2}x {:>6}/{}/{}",
                r.scheme,
                r.pruning,
                r.batch_size,
                r.commits,
                r.incremental_secs,
                r.full_secs,
                r.speedup,
                r.tier_commits[0],
                r.tier_commits[1],
                r.tier_commits[2],
            );
            results.push(r);
        }
    }

    // The removed linear terms, made visible: at micro-batch 1 the mean
    // per-commit maintenance cost (index + cleaning + snapshot patch) AND
    // the repair/decision cost of the second half of the stream should
    // track the first half's, even though the collection has grown — the
    // per-commit CSR rebuild (PR 3), the full edge-list/top-k-union
    // decision re-merge (PR 4) and the EJS per-commit degree pass (PR 5)
    // are gone.
    println!();
    println!("per-commit cost at batch size 1 (first half vs second half of the stream):");
    for r in results.iter().filter(|r| r.batch_size == 1) {
        let m = |t: &CommitTimings| t.index_secs + t.cleaning_secs + t.snapshot_secs;
        println!(
            "  {:<6} {:<6} maintenance {:>8.1}us → {:>8.1}us   reweigh {:>8.1}us → {:>8.1}us   decision {:>8.1}us → {:>8.1}us",
            r.scheme,
            r.pruning,
            m(&r.phases_first_half) * 1e6,
            m(&r.phases_second_half) * 1e6,
            r.phases_first_half.reweigh_secs * 1e6,
            r.phases_second_half.reweigh_secs * 1e6,
            r.phases_first_half.decision_secs * 1e6,
            r.phases_second_half.decision_secs * 1e6,
        );
    }

    // Multi-core phase: the sharded commit path at 1/2/4/8 worker threads.
    println!();
    println!("## Sharded multi-core commit path (EJS / wep, 4 owner shards)");
    println!(
        "{:<8} {:>8} {:>10} {:>9} {:>15} {:>12} {:>11}",
        "threads", "commits", "secs", "speedup", "frontier pairs", "tiers d/r/f", "equivalent"
    );
    let multicore = multicore_phase(&rows);
    for r in &multicore {
        println!(
            "{:<8} {:>8} {:>10.4} {:>8.2}x {:>15} {:>8}/{}/{} {:>11}",
            r.threads,
            r.commits,
            r.secs,
            r.speedup,
            r.frontier_pairs,
            r.tier_commits[0],
            r.tier_commits[1],
            r.tier_commits[2],
            r.equivalent,
        );
    }

    // BENCH_incremental.json — hand-rolled (the workspace has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"preset\": \"census\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"profiles\": {},", rows.len());
    let _ = writeln!(json, "  \"seeded\": {},", rows.len() / 2);
    let _ = writeln!(
        json,
        "  \"streamed\": {},",
        (rows.len() - rows.len() / 2).min(MAX_STREAMED)
    );
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"pruning\": \"{}\", \"batch_size\": {}, \"commits\": {}, \"incremental_secs\": {:.6}, \"full_recompute_secs\": {:.6}, \"speedup\": {:.3}, \"final_candidates\": {}, \"patched_csr_rows\": {}, \"retention_flips\": {}, \"threshold_crossers\": {}, \"commits_dirty\": {}, \"commits_reweigh\": {}, \"commits_full\": {}, \"edges_swept\": {}, \"edges_rekeyed\": {}, \"equivalent\": {}, \"phases\": {}, \"per_commit_first_half\": {}, \"per_commit_second_half\": {}}}{comma}",
            r.scheme,
            r.pruning,
            r.batch_size,
            r.commits,
            r.incremental_secs,
            r.full_secs,
            r.speedup,
            r.final_candidates,
            r.patched_rows,
            r.retention_flips,
            r.threshold_crossers,
            r.tier_commits[0],
            r.tier_commits[1],
            r.tier_commits[2],
            r.edges_swept,
            r.edges_rekeyed,
            r.equivalent,
            r.phases.bench_json(),
            r.phases_first_half.bench_json(),
            r.phases_second_half.bench_json(),
        );
    }
    json.push_str("  ],\n");
    // The multi-core section: per-thread-count sharded runs. Each line
    // carries the same `"scheme"`/`"equivalent"`/`"commits_full"` keys the
    // run lines do, so CI's count-matching greps cover these runs too.
    let _ = writeln!(json, "  \"multicore\": [");
    for (i, r) in multicore.iter().enumerate() {
        let comma = if i + 1 == multicore.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"EJS\", \"pruning\": \"wep\", \"threads\": {}, \"shards\": {}, \"commits\": {}, \"secs\": {:.6}, \"speedup\": {:.3}, \"frontier_pairs\": {}, \"commits_dirty\": {}, \"commits_reweigh\": {}, \"commits_full\": {}, \"final_candidates\": {}, \"equivalent\": {}}}{comma}",
            r.threads,
            r.shards,
            r.commits,
            r.secs,
            r.speedup,
            r.frontier_pairs,
            r.tier_commits[0],
            r.tier_commits[1],
            r.tier_commits[2],
            r.final_candidates,
            r.equivalent,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!();
    println!("wrote BENCH_incremental.json");
    for r in &multicore {
        assert!(
            r.equivalent,
            "sharded multi-core run at {} threads diverged from the single-thread run or batch",
            r.threads
        );
    }
    for r in &results {
        assert!(
            r.equivalent,
            "batch-equivalence violated for {} / {} at batch size {}",
            r.scheme, r.pruning, r.batch_size
        );
        // The repair-ladder acceptance: global-statistic schemes never
        // degrade to the full tier over the streamed window, and neither
        // do CNP budget moves (bounded containment adjustments instead).
        if matches!(r.scheme, "EJS" | "ECBS" | "chi2") || r.pruning.starts_with("cnp") {
            assert_eq!(
                r.tier_commits[2], 0,
                "{} / {} at batch size {} degraded to the full tier",
                r.scheme, r.pruning, r.batch_size
            );
        }
    }

    // Memory-diet phase: bulk-stream the scaled census presets, recording
    // structure footprints and kernel RSS (BENCH_memory.json).
    println!();
    let preset_env = std::env::var("BLAST_MEMORY_PRESETS")
        .unwrap_or_else(|_| "census,census100k (default)".into());
    println!("## Memory diet (BLAST_MEMORY_PRESETS: {preset_env})");
    let memory_runs = memory_phase();
    std::fs::write("BENCH_memory.json", memory_json(&memory_runs))
        .expect("write BENCH_memory.json");
    println!("wrote BENCH_memory.json");
    for r in &memory_runs {
        assert_ne!(
            r.equivalent,
            Some(false),
            "{} / {} memory run diverged from batch",
            r.scheme,
            r.preset
        );
        if let Some(c) = &r.cold {
            assert!(
                c.evictions > 0 && c.rehydrations > 0,
                "{} budgeted run ({} bytes) never exercised the cold tier",
                r.preset,
                c.budget_bytes
            );
            assert!(
                r.commits_full <= 1,
                "{} budgeted run degraded to the full tier {} times — eviction must never \
                 force a structural repair beyond the initialising commit",
                r.preset,
                r.commits_full
            );
        }
    }
}
