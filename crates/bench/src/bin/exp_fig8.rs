//! Regenerates Figure 8 (component ablation: wnp / chi / wsh / bch).
fn main() {
    print!("{}", blast_bench::experiments::fig8(blast_bench::scale()));
}
