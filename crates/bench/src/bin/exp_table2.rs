//! Regenerates Table 2 (dataset characteristics).
fn main() {
    print!("{}", blast_bench::experiments::table2(blast_bench::scale()));
}
