//! Ablation sweeps for the design choices DESIGN.md §5 calls out:
//! the pruning constants c and d (§3.3.2), the glue cluster (§4.4), and the
//! two Block Purging policies. Not a paper table — supporting evidence for
//! the defaults.

use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::{BlockPurging, CardinalityPurging};
use blast_blocking::token_blocking::TokenBlocking;
use blast_core::config::BlastConfig;
use blast_core::pipeline::BlastPipeline;
use blast_core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast_metrics::quality::{evaluate_blocks, evaluate_pairs};

fn main() {
    let scale = blast_bench::scale();
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(scale * 0.5);
    let (input, gt) = generate_clean_clean(&spec);
    println!(
        "## Ablations (ar1 at scale {}, |D_E| = {})",
        scale * 0.5,
        gt.len()
    );

    // --- c / d sweep -----------------------------------------------------
    println!("\n### Pruning constants (θᵢ = Mᵢ/c, θᵢⱼ = (θᵢ+θⱼ)/d)");
    println!(
        "{:>5} {:>5} {:>8} {:>8} {:>8} {:>9}",
        "c", "d", "PC(%)", "PQ(%)", "F1", "|B|"
    );
    for c in [1.0, 1.5, 2.0, 3.0, 5.0] {
        for d in [1.0, 2.0, 4.0] {
            let outcome =
                BlastPipeline::new(BlastConfig::default().with_pruning_constants(c, d)).run(&input);
            let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
            println!(
                "{c:>5.1} {d:>5.1} {:>8.2} {:>8.2} {:>8.3} {:>9}",
                q.pc * 100.0,
                q.pq * 100.0,
                q.f1,
                outcome.pairs.len()
            );
        }
    }

    // --- glue cluster ----------------------------------------------------
    println!("\n### Glue cluster");
    for glue in [true, false] {
        let outcome = BlastPipeline::new(BlastConfig {
            schema: LooseSchemaConfig {
                glue,
                ..Default::default()
            },
            ..BlastConfig::default()
        })
        .run(&input);
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        println!(
            "glue = {glue:<5}  PC = {:>6.2}%  PQ = {:>6.2}%  F1 = {:.3}",
            q.pc * 100.0,
            q.pq * 100.0,
            q.f1
        );
    }

    // --- purging policies --------------------------------------------------
    println!("\n### Block Purging policy (on the LMI blocks, before filtering)");
    let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
    let blocks = TokenBlocking::new().build_with(&input, &info.partitioning);
    type Policy<'a> = (
        &'a str,
        Box<dyn Fn() -> blast_blocking::BlockCollection + 'a>,
    );
    let policies: [Policy<'_>; 3] = [
        (
            "none",
            Box::new(|| blocks.with_blocks(blocks.blocks().to_vec())),
        ),
        (
            "half-collection (paper)",
            Box::new(|| BlockPurging::new().purge(&blocks)),
        ),
        (
            "cardinality-adaptive [18]",
            Box::new(|| CardinalityPurging::new().purge(&blocks)),
        ),
    ];
    println!(
        "{:<26} {:>8} {:>10} {:>10}",
        "policy", "PC(%)", "PQ(%)", "|B|"
    );
    for (name, purge) in policies {
        let purged = BlockFiltering::new().filter(&purge());
        let q = evaluate_blocks(&purged, &gt);
        println!(
            "{name:<26} {:>8.2} {:>10.4} {:>10}",
            q.pc * 100.0,
            q.pq * 100.0,
            blast_metrics::report::fmt_card(q.comparisons)
        );
    }
}
