//! Regenerates Figure 9 (LMI vs Attribute Clustering).
fn main() {
    print!("{}", blast_bench::experiments::fig9(blast_bench::scale()));
}
