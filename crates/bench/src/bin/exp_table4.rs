//! Regenerates Table 4 (the ar1/ar2/prd/mov meta-blocking comparison).
fn main() {
    print!("{}", blast_bench::experiments::table4(blast_bench::scale()));
}
