//! Concurrent candidate reads under live ingest.
//!
//! Seeds a [`ServePipeline`] with half of a Zipf-skewed dirty collection,
//! then streams the rest on the writer thread (one epoch-published
//! snapshot per micro-batch commit) while N reader threads hammer the
//! published view with a `candidates` / `top-k` query mix. For each
//! reader-pool size (0 = interference baseline, then 1/2/4/8) it records
//!
//! * read-latency quantiles (p50 / p99 / p999, off the real
//!   `serve.read_latency` histogram the HTTP layer uses),
//! * sustained read throughput over the ingest window,
//! * writer commit latency (mean / p99 / max) — the interference story:
//!   how much the reader pool costs the writer, and
//! * the read-your-writes gate: after the stream drains, the published
//!   view must equal the engine's retained set *and* a from-scratch batch
//!   run (`"equivalent"` per run, asserted by CI off the JSON).
//!
//! Writes `BENCH_serve.json` and prints a human summary. `BLAST_SCALE`
//! scales the collection like the other `exp_*` runners. Thread counts
//! above the machine's core count timeshare; the JSON records the core
//! count so readers can judge the throughput curve honestly.

use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast_datamodel::entity::SourceId;
use blast_datamodel::input::ErInput;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use blast_serve::{ServePipeline, ServeTotals};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// The streamed tail is capped so the per-commit publish path dominates
/// the window rather than collection growth.
const MAX_STREAMED: usize = 128;
const BATCH_SIZE: usize = 8;
/// After the insert tail, the streamed rows are re-updated this many times
/// (engine repair + republish per batch) so the measurement window is long
/// enough for stable read-latency quantiles.
const UPDATE_ROUNDS: usize = 4;

struct ServeRun {
    readers: usize,
    commits: usize,
    ingest_secs: f64,
    /// Writer commit+publish latency over the window (the interference
    /// figure — compare against the 0-reader baseline).
    commit_mean_secs: f64,
    commit_p99_secs: f64,
    commit_max_secs: f64,
    /// Reader-side totals off the serve metrics registry.
    queries: u64,
    queries_per_sec: f64,
    totals: ServeTotals,
    final_candidates: usize,
    final_seq: u64,
    /// Published == retained == batch after the stream drains.
    equivalent: bool,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_serve(rows: &[(String, Vec<(String, String)>)], readers: usize) -> ServeRun {
    let seed_len = rows.len() / 2;
    let streamed = (rows.len() - seed_len).min(MAX_STREAMED);

    let mut p = ServePipeline::new(IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    ));
    for (id, pairs) in &rows[..seed_len] {
        p.insert(
            SourceId(0),
            id,
            pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
        );
    }
    p.commit_and_publish();

    let done = Arc::new(AtomicBool::new(false));
    let metrics = p.metrics().clone();
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let mut reader = p.epoch().register().expect("a free epoch slot");
            let done = Arc::clone(&done);
            let metrics = metrics.clone();
            thread::spawn(move || {
                // A cheap per-thread LCG picks the queried node so the
                // readers don't stampede one row.
                let mut x = 0x9e37_79b9_u64.wrapping_mul(r as u64 + 1) | 1;
                let mut queries = 0u64;
                while !done.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    {
                        let guard = reader.pin();
                        let nodes = guard.nodes().max(1);
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let id = (x >> 33) as u32 % nodes;
                        // The same mix the HTTP layer serves: a full
                        // candidate list, then a top-k cut.
                        std::hint::black_box(guard.candidates(id));
                        std::hint::black_box(guard.top_k(id, 10));
                    }
                    metrics.record_query(t0.elapsed().as_secs_f64());
                    queries += 1;
                }
                queries
            })
        })
        .collect();

    // The writer: stream the tail, publishing per micro-batch, timing each
    // commit+publish individually for the interference quantiles.
    let base = p.metrics().snapshot();
    let mut commit_secs: Vec<f64> = Vec::new();
    let mut streamed_ids = Vec::with_capacity(streamed);
    let t0 = Instant::now();
    for chunk in rows[seed_len..seed_len + streamed].chunks(BATCH_SIZE) {
        for (id, pairs) in chunk {
            streamed_ids.push(p.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            ));
        }
        let c0 = Instant::now();
        p.commit_and_publish();
        commit_secs.push(c0.elapsed().as_secs_f64());
    }
    // Update rounds: rotate each streamed row onto a neighbour's values so
    // blocks genuinely move and every commit republishes real deltas.
    for round in 1..=UPDATE_ROUNDS {
        for (chunk_start, chunk) in streamed_ids
            .chunks(BATCH_SIZE)
            .enumerate()
            .map(|(c, ch)| (c * BATCH_SIZE, ch))
        {
            for (off, &id) in chunk.iter().enumerate() {
                let (_, pairs) = &rows[seed_len + (chunk_start + off + round) % streamed];
                p.update(id, pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())));
            }
            let c0 = Instant::now();
            p.commit_and_publish();
            commit_secs.push(c0.elapsed().as_secs_f64());
        }
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let queries: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("reader thread panicked"))
        .sum();

    let totals = ServeTotals::from_snapshot(&p.metrics().snapshot().delta_since(&base));
    commit_secs.sort_by(f64::total_cmp);
    let equivalent = p.verify_equivalence();
    ServeRun {
        readers,
        commits: commit_secs.len(),
        ingest_secs,
        commit_mean_secs: commit_secs.iter().sum::<f64>() / commit_secs.len().max(1) as f64,
        commit_p99_secs: percentile(&commit_secs, 0.99),
        commit_max_secs: commit_secs.last().copied().unwrap_or(0.0),
        queries,
        queries_per_sec: queries as f64 / ingest_secs.max(1e-12),
        totals,
        final_candidates: p.latest().pairs() as usize,
        final_seq: p.seq(),
        equivalent,
    }
}

fn main() {
    let scale = blast_bench::scale();
    let spec = dirty_preset(DirtyPreset::Census).scaled(scale * 2.0);
    let (input, _) = generate_dirty(&spec);
    let ErInput::Dirty(d) = &input else {
        unreachable!()
    };
    let rows: Vec<(String, Vec<(String, String)>)> = d
        .profiles()
        .iter()
        .map(|p| {
            (
                p.external_id.to_string(),
                p.values
                    .iter()
                    .map(|(a, v)| (d.attribute_name(*a).to_string(), v.to_string()))
                    .collect(),
            )
        })
        .collect();
    let cores = thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "## Concurrent reads under live ingest (census preset, scale {scale}, {} profiles, {} streamed, {} cores)",
        rows.len(),
        (rows.len() - rows.len() / 2).min(MAX_STREAMED),
        cores,
    );
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>11} {:>11} {:>11} {:>12} {:>11}",
        "readers",
        "commits",
        "ingest(s)",
        "commit µ(us)",
        "p99(us)",
        "queries",
        "reads/s",
        "read p50(us)",
        "p99(us)"
    );

    // 0 readers first: the writer-only baseline the interference numbers
    // are read against.
    let mut runs: Vec<ServeRun> = Vec::new();
    for readers in [0usize, 1, 2, 4, 8] {
        let r = run_serve(&rows, readers);
        println!(
            "{:<8} {:>8} {:>10.4} {:>12.1} {:>11.1} {:>11} {:>11.0} {:>12.1} {:>11.1}",
            r.readers,
            r.commits,
            r.ingest_secs,
            r.commit_mean_secs * 1e6,
            r.commit_p99_secs * 1e6,
            r.queries,
            r.queries_per_sec,
            r.totals.read_p50_secs * 1e6,
            r.totals.read_p99_secs * 1e6,
        );
        runs.push(r);
    }

    // BENCH_serve.json — hand-rolled (the workspace has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"preset\": \"census\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"profiles\": {},", rows.len());
    let _ = writeln!(json, "  \"seeded\": {},", rows.len() / 2);
    let _ = writeln!(
        json,
        "  \"streamed\": {},",
        (rows.len() - rows.len() / 2).min(MAX_STREAMED)
    );
    let _ = writeln!(json, "  \"batch_size\": {BATCH_SIZE},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"readers\": {}, \"commits\": {}, \"ingest_secs\": {:.6}, \"commit_mean_secs\": {:.9}, \"commit_p99_secs\": {:.9}, \"commit_max_secs\": {:.9}, \"queries\": {}, \"queries_per_sec\": {:.1}, \"read_p50_secs\": {:.9}, \"read_p99_secs\": {:.9}, \"read_p999_secs\": {:.9}, \"read_mean_secs\": {:.9}, \"snapshot_swaps\": {}, \"stale_epochs\": {}, \"final_candidates\": {}, \"final_seq\": {}, \"equivalent\": {}}}{comma}",
            r.readers,
            r.commits,
            r.ingest_secs,
            r.commit_mean_secs,
            r.commit_p99_secs,
            r.commit_max_secs,
            r.queries,
            r.queries_per_sec,
            r.totals.read_p50_secs,
            r.totals.read_p99_secs,
            r.totals.read_p999_secs,
            r.totals.read_mean_secs,
            r.totals.snapshot_swaps,
            r.totals.stale_epochs,
            r.final_candidates,
            r.final_seq,
            r.equivalent,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!();
    println!("wrote BENCH_serve.json");

    for r in &runs {
        assert!(
            r.equivalent,
            "published view diverged from the engine/batch run at {} readers",
            r.readers
        );
        if r.readers > 0 {
            assert!(
                r.queries > 0,
                "reader pool of {} issued no queries",
                r.readers
            );
        }
    }
}
