//! Regenerates Figure 10 (PC vs LSH threshold, glue cluster disabled).
fn main() {
    print!("{}", blast_bench::experiments::fig10(blast_bench::scale()));
}
