//! Regenerates Table 3 (block collection characteristics, T vs L, before
//! and after purging+filtering).
fn main() {
    print!("{}", blast_bench::experiments::table3(blast_bench::scale()));
}
