//! Regenerates Table 6 (LMI run time vs LSH threshold).
fn main() {
    print!("{}", blast_bench::experiments::table6(blast_bench::scale()));
}
