//! Runs the whole experiment suite (every table and figure) in sequence.
//! Honours `BLAST_SCALE` (default 1.0).

use std::time::Instant;

type Section = (&'static str, Box<dyn Fn() -> String>);

fn main() {
    let scale = blast_bench::scale();
    let t0 = Instant::now();
    println!("# BLAST experiment suite (BLAST_SCALE = {scale})\n");
    let sections: Vec<Section> = vec![
        (
            "Table 2",
            Box::new(move || blast_bench::experiments::table2(scale)),
        ),
        (
            "Table 3",
            Box::new(move || blast_bench::experiments::table3(scale)),
        ),
        (
            "Table 4",
            Box::new(move || blast_bench::experiments::table4(scale)),
        ),
        (
            "Table 5",
            Box::new(move || blast_bench::experiments::table5(scale)),
        ),
        (
            "Table 6",
            Box::new(move || blast_bench::experiments::table6(scale)),
        ),
        (
            "Table 7",
            Box::new(move || blast_bench::experiments::table7(scale)),
        ),
        ("Figure 5", Box::new(blast_bench::experiments::fig5)),
        (
            "Figure 8",
            Box::new(move || blast_bench::experiments::fig8(scale)),
        ),
        (
            "Figure 9",
            Box::new(move || blast_bench::experiments::fig9(scale)),
        ),
        (
            "Figure 10",
            Box::new(move || blast_bench::experiments::fig10(scale)),
        ),
    ];
    for (name, f) in sections {
        let t = Instant::now();
        let body = f();
        println!("{body}");
        eprintln!("[{name} done in {:.1?}]", t.elapsed());
    }
    eprintln!("[suite done in {:.1?}]", t0.elapsed());
}
