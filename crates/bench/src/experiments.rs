//! One function per table/figure of the paper's evaluation.

use crate::methods::{
    prepare, run_blast, run_blast_weighted_cnp, run_supervised, run_traditional_avg,
    run_traditional_sweep, MethodResult, PreparedDataset,
};
use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_core::pruning::BlastPruning;
use blast_core::schema::attribute_profile::AttributeProfiles;
use blast_core::schema::candidates::CandidateSource;
use blast_core::schema::extraction::{InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor};
use blast_core::weighting::{ChiSquaredWeigher, WsEntropyWeigher};
use blast_datagen::stats::DatasetStats;
use blast_datagen::{
    clean_clean_preset, dirty_preset, generate_clean_clean, generate_dirty, CleanCleanPreset,
    DirtyPreset,
};
use blast_datamodel::tokenizer::Tokenizer;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_graph::GraphSnapshot;
use blast_metrics::quality::{evaluate_blocks, evaluate_pairs};
use blast_metrics::report::fmt_card;
use std::fmt::Write as _;
use std::time::Instant;

fn prepare_preset(preset: CleanCleanPreset, scale: f64) -> PreparedDataset {
    let spec = clean_clean_preset(preset).scaled(scale);
    let (input, gt) = generate_clean_clean(&spec);
    prepare(input, gt, LooseSchemaConfig::default())
}

/// Table 2: dataset characteristics.
pub fn table2(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Table 2 — dataset characteristics (scale {scale})");
    let _ = writeln!(
        out,
        "{:>5} | {:^21} | {:^13} | {:^21} | {:>8}",
        "", "|E1| - |E2|", "|A1| - |A2|", "nvp", "|D_E|"
    );
    for preset in CleanCleanPreset::ALL {
        let spec = clean_clean_preset(preset).scaled(scale);
        let (input, gt) = generate_clean_clean(&spec);
        let stats = DatasetStats::of(&input, &gt);
        let _ = writeln!(out, "{}", stats.table2_row(preset.label()));
    }
    for preset in DirtyPreset::ALL {
        let spec = dirty_preset(preset).scaled(scale);
        let (input, gt) = generate_dirty(&spec);
        let stats = DatasetStats::of(&input, &gt);
        let _ = writeln!(out, "{}", stats.table2_row(preset.label()));
    }
    out
}

/// Table 3: Token Blocking alone ("T") vs with LMI ("L"), before and after
/// Block Purging + Block Filtering.
pub fn table3(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Table 3 — block collections (scale {scale})");
    let _ = writeln!(
        out,
        "{:>5} {:>2} | {:>7} {:>10} {:>10} | {:>7} {:>10} {:>10}",
        "", "", "PC(%)", "PQ(%)", "|Bo|", "PC(%)", "PQ(%)", "|Bf|"
    );
    let _ = writeln!(
        out,
        "{:>8} | {:^29} | {:^29}",
        "", "baseline", "after purging+filtering"
    );
    for preset in CleanCleanPreset::ALL {
        let spec = clean_clean_preset(preset).scaled(scale);
        let (input, gt) = generate_clean_clean(&spec);
        let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
        for (tag, blocks) in [
            ("T", TokenBlocking::new().build(&input)),
            (
                "L",
                TokenBlocking::new().build_with(&input, &info.partitioning),
            ),
        ] {
            let q0 = evaluate_blocks(&blocks, &gt);
            let cleaned = BlockFiltering::new().filter(&BlockPurging::new().purge(&blocks));
            let q1 = evaluate_blocks(&cleaned, &gt);
            let _ = writeln!(
                out,
                "{:>5} {:>2} | {:>7.1} {:>10.2e} {:>10} | {:>7.1} {:>10.2e} {:>10}",
                preset.label(),
                tag,
                q0.pc * 100.0,
                q0.pq * 100.0,
                fmt_card(q0.comparisons),
                q1.pc * 100.0,
                q1.pq * 100.0,
                fmt_card(q1.comparisons),
            );
        }
    }
    out
}

/// The Table 4/5 row set for one prepared dataset. The four traditional
/// prunings share one materialised edge list per scheme per block
/// collection (T and L) instead of re-traversing per configuration.
fn comparison_rows(
    prepared: &PreparedDataset,
    schema_config: LooseSchemaConfig,
    blast_label: &str,
) -> Vec<MethodResult> {
    const ALGS: [PruningAlgorithm; 4] = [
        PruningAlgorithm::Wnp1,
        PruningAlgorithm::Wnp2,
        PruningAlgorithm::Cnp1,
        PruningAlgorithm::Cnp2,
    ];
    let t_rows = run_traditional_sweep(&prepared.blocks_t, &ALGS, &prepared.gt, 0.0, |a| {
        format!("{} T", a.label())
    });
    let l_rows = run_traditional_sweep(
        &prepared.blocks_l,
        &ALGS,
        &prepared.gt,
        prepared.l_seconds,
        |a| format!("{} L", a.label()),
    );

    let mut rows = Vec::new();
    for i in 0..2 {
        // wnp1, wnp2
        rows.push(t_rows[i].clone());
        rows.push(l_rows[i].clone());
    }
    for (i, algorithm) in [(2, PruningAlgorithm::Cnp1), (3, PruningAlgorithm::Cnp2)] {
        rows.push(t_rows[i].clone());
        rows.push(l_rows[i].clone());
        rows.push(run_blast_weighted_cnp(
            &format!("{} Lchi2h", algorithm.label()),
            prepared,
            algorithm,
        ));
    }
    rows.push(run_supervised(prepared));
    rows.push(run_blast(prepared, schema_config, blast_label));
    rows
}

/// Table 4: the full comparison on ar1, ar2, prd, mov.
pub fn table4(scale: f64) -> String {
    let mut out = String::new();
    for preset in [
        CleanCleanPreset::Ar1,
        CleanCleanPreset::Ar2,
        CleanCleanPreset::Prd,
        CleanCleanPreset::Mov,
    ] {
        let prepared = prepare_preset(preset, scale);
        let _ = writeln!(
            out,
            "## Table 4 ({}) — scale {scale}, |D_E| = {}",
            preset.label(),
            prepared.gt.len()
        );
        let _ = writeln!(out, "{}", MethodResult::header());
        for row in comparison_rows(&prepared, LooseSchemaConfig::default(), "Blast") {
            let _ = writeln!(out, "{}", row.row());
        }
        let _ = writeln!(out);
    }
    out
}

/// Table 5: the dbp comparison, including the LSH-starred variants.
pub fn table5(scale: f64) -> String {
    let mut out = String::new();
    let prepared = prepare_preset(CleanCleanPreset::DbpScaled, scale);
    let _ = writeln!(
        out,
        "## Table 5 (dbp, scaled) — scale {scale}, |D_E| = {}",
        prepared.gt.len()
    );
    let _ = writeln!(out, "{}", MethodResult::header());
    for row in comparison_rows(&prepared, LooseSchemaConfig::default(), "Blast") {
        let _ = writeln!(out, "{}", row.row());
    }

    // Starred variants: LSH-based LMI.
    let lsh_config = LooseSchemaConfig {
        candidates: CandidateSource::lsh_default(),
        ..Default::default()
    };
    let spec = clean_clean_preset(CleanCleanPreset::DbpScaled).scaled(scale);
    let (input, gt) = generate_clean_clean(&spec);
    let prepared_star = prepare(input, gt, lsh_config.clone());
    let star_rows = run_traditional_sweep(
        &prepared_star.blocks_l,
        &[
            PruningAlgorithm::Wnp1,
            PruningAlgorithm::Wnp2,
            PruningAlgorithm::Cnp1,
            PruningAlgorithm::Cnp2,
        ],
        &prepared_star.gt,
        prepared_star.l_seconds,
        |a| format!("{} L*", a.label()),
    );
    for row in star_rows {
        let _ = writeln!(out, "{}", row.row());
    }
    let row = run_blast(&prepared_star, lsh_config, "Blast*");
    let _ = writeln!(out, "{}", row.row());
    out
}

/// Table 6: LMI run time vs LSH threshold (dbp).
pub fn table6(scale: f64) -> String {
    let mut out = String::new();
    let spec = clean_clean_preset(CleanCleanPreset::DbpScaled).scaled(scale);
    let (input, _) = generate_clean_clean(&spec);
    let profiles = AttributeProfiles::build(&input, &Tokenizer::new());
    let _ = writeln!(
        out,
        "## Table 6 — LMI run time vs LSH threshold (dbp, scale {scale}, {} attributes)",
        profiles.len()
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>10}",
        "threshold", "candidates", "time(s)", "clusters"
    );

    // "—" column: exact all-pairs LMI.
    let t0 = Instant::now();
    let info =
        LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract_from_profiles(&profiles);
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12.3} {:>10}",
        "-",
        info.candidate_pairs,
        t0.elapsed().as_secs_f64(),
        info.clusters
    );

    for threshold in [0.10, 0.22, 0.32, 0.41, 0.55, 0.64] {
        let t0 = Instant::now();
        let info = LooseSchemaExtractor::new(LooseSchemaConfig {
            candidates: CandidateSource::lsh_with_threshold(150, threshold, 0xb1a57),
            ..Default::default()
        })
        .extract_from_profiles(&profiles);
        let _ = writeln!(
            out,
            "{:>10.2} {:>12} {:>12.3} {:>10}",
            threshold,
            info.candidate_pairs,
            t0.elapsed().as_secs_f64(),
            info.clusters
        );
    }
    out
}

/// Table 7: dirty ER (census, cora, cddb) — BLAST vs traditional WNP/CNP,
/// all in combination with LMI (the paper's footnote 13).
pub fn table7(scale: f64) -> String {
    let mut out = String::new();
    for preset in DirtyPreset::ALL {
        let spec = dirty_preset(preset).scaled(scale);
        let (input, gt) = generate_dirty(&spec);
        let prepared = prepare(input, gt, LooseSchemaConfig::default());
        let _ = writeln!(
            out,
            "## Table 7 ({}) — scale {scale}: {} profiles, {} matches, {} attrs, {} LMI clusters",
            preset.label(),
            prepared.input.total_profiles(),
            prepared.gt.len(),
            match &prepared.input {
                blast_datamodel::input::ErInput::Dirty(d) => d.attribute_count(),
                _ => 0,
            },
            prepared.schema.clusters,
        );
        let _ = writeln!(out, "{}", MethodResult::header());
        let blast_row = run_blast(&prepared, LooseSchemaConfig::default(), "Blast");
        let _ = writeln!(out, "{}", blast_row.row());
        // One materialised edge list per scheme, shared by all four
        // prunings.
        let rows = run_traditional_sweep(
            &prepared.blocks_l,
            &[
                PruningAlgorithm::Wnp1,
                PruningAlgorithm::Wnp2,
                PruningAlgorithm::Cnp1,
                PruningAlgorithm::Cnp2,
            ],
            &prepared.gt,
            prepared.l_seconds,
            |a| a.label().to_string(),
        );
        for row in rows {
            let _ = writeln!(out, "{}", row.row());
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 5: the LSH S-curve for r = 5, b = 30.
pub fn fig5() -> String {
    use blast_lsh::scurve::SCurve;
    let mut out = String::new();
    let curve = SCurve::sample(5, 30, 20);
    let _ = writeln!(
        out,
        "## Figure 5 — LSH S-curve (r = 5, b = 30), threshold ≈ {:.3}",
        curve.threshold()
    );
    for (s, p) in &curve.points {
        let bar = "#".repeat((p * 50.0).round() as usize);
        let _ = writeln!(out, "  s={s:>5.2}  P={p:>7.4}  {bar}");
    }
    out
}

/// Figure 8: component ablation — classical WNP vs chi (χ² only) vs wsh
/// (traditional schemes × entropy) vs bch (full BLAST), on the L blocks.
pub fn fig8(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 8 — BLAST component ablation (scale {scale})"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>6} | {:>8} {:>8} {:>8} {:>8}",
        "", "", "wnp", "chi", "wsh", "bch"
    );
    for preset in CleanCleanPreset::ALL {
        let prepared = prepare_preset(preset, scale);
        let blocks = &prepared.blocks_l;
        let entropies = prepared.schema.partitioning.block_entropies(blocks);
        let ctx = GraphSnapshot::build(blocks).with_block_entropies(entropies);

        // wnp: average of wnp1 and wnp2 over the 5 traditional schemes.
        let mut wnp_pc = 0.0;
        let mut wnp_pq = 0.0;
        for algorithm in [PruningAlgorithm::Wnp1, PruningAlgorithm::Wnp2] {
            let r = run_traditional_avg("", blocks, algorithm, &prepared.gt, 0.0);
            wnp_pc += r.quality.pc / 2.0;
            wnp_pq += r.quality.pq / 2.0;
        }

        // chi: BLAST pruning, χ² without the entropy factor.
        let retained = BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::without_entropy());
        let chi = evaluate_pairs(retained.pairs(), &prepared.gt);

        // wsh: BLAST pruning, traditional schemes × entropy (averaged).
        let mut wsh_pc = 0.0;
        let mut wsh_pq = 0.0;
        for scheme in WeightingScheme::ALL {
            let mut ctx_ws = GraphSnapshot::build(blocks)
                .with_block_entropies(prepared.schema.partitioning.block_entropies(blocks));
            if scheme.requires_degrees() {
                ctx_ws.ensure_degrees();
            }
            let retained = BlastPruning::new().prune(&ctx_ws, &WsEntropyWeigher::new(scheme));
            let q = evaluate_pairs(retained.pairs(), &prepared.gt);
            wsh_pc += q.pc / 5.0;
            wsh_pq += q.pq / 5.0;
        }

        // bch: full BLAST weighting.
        let retained = BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::new());
        let bch = evaluate_pairs(retained.pairs(), &prepared.gt);

        let _ = writeln!(
            out,
            "{:>5} {:>6} | {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            preset.label(),
            "PC(%)",
            wnp_pc * 100.0,
            chi.pc * 100.0,
            wsh_pc * 100.0,
            bch.pc * 100.0
        );
        let _ = writeln!(
            out,
            "{:>5} {:>6} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            "",
            "PQ(%)",
            wnp_pq * 100.0,
            chi.pq * 100.0,
            wsh_pq * 100.0,
            bch.pq * 100.0
        );
    }
    out
}

/// Figure 9: LMI vs AC — PC of BLAST with each induction algorithm, and
/// ΔPQ(AC → LMI).
pub fn fig9(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 9 — LMI vs AC (scale {scale})");
    let _ = writeln!(
        out,
        "{:>5} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "", "PC lmi(%)", "PC ac(%)", "PQ lmi(%)", "PQ ac(%)", "dPQ(%)"
    );
    for preset in CleanCleanPreset::ALL {
        let spec = clean_clean_preset(preset).scaled(scale);
        let run = |algorithm: InductionAlgorithm| {
            let (input, gt) = generate_clean_clean(&spec);
            let config = LooseSchemaConfig {
                algorithm,
                ..Default::default()
            };
            let prepared = prepare(input, gt, config.clone());
            let r = run_blast(&prepared, config, "");
            r.quality
        };
        let lmi = run(InductionAlgorithm::Lmi);
        let ac = run(InductionAlgorithm::AttributeClustering);
        let dpq = if ac.pq > 0.0 {
            (lmi.pq - ac.pq) / ac.pq * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>5} | {:>9.2} {:>9.2} | {:>9.3} {:>9.3} | {:>+8.2}",
            preset.label(),
            lmi.pc * 100.0,
            ac.pc * 100.0,
            lmi.pq * 100.0,
            ac.pq * 100.0,
            dpq
        );
    }
    out
}

/// Figure 10: PC of LSH-LMI Token Blocking (glue cluster disabled) vs LSH
/// threshold (dbp).
pub fn fig10(scale: f64) -> String {
    let mut out = String::new();
    let spec = clean_clean_preset(CleanCleanPreset::DbpScaled).scaled(scale);
    let (input, gt) = generate_clean_clean(&spec);
    let profiles = AttributeProfiles::build(&input, &Tokenizer::new());
    let _ = writeln!(
        out,
        "## Figure 10 — PC vs LSH threshold, glue cluster disabled (dbp, scale {scale})"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>10} {:>10} {:>8}",
        "threshold", "(r,b)", "clusters", "PC(%)", "time(s)"
    );
    for threshold in [0.10, 0.22, 0.32, 0.41, 0.55, 0.64, 0.80] {
        let candidates = CandidateSource::lsh_with_threshold(150, threshold, 0xf16);
        let (r, b) = match &candidates {
            CandidateSource::Lsh { rows, bands, .. } => (*rows, *bands),
            _ => unreachable!(),
        };
        let t0 = Instant::now();
        let info = LooseSchemaExtractor::new(LooseSchemaConfig {
            candidates,
            glue: false,
            ..Default::default()
        })
        .extract_from_profiles(&profiles);
        let blocks = TokenBlocking::new().build_with(&input, &info.partitioning);
        let q = evaluate_blocks(&blocks, &gt);
        let _ = writeln!(
            out,
            "{:>10.2} {:>8} {:>10} {:>10.2} {:>8.3}",
            threshold,
            format!("({r},{b})"),
            info.clusters,
            q.pc * 100.0,
            t0.elapsed().as_secs_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.02;

    #[test]
    fn table2_renders_all_presets() {
        let t = table2(TINY);
        for label in ["ar1", "ar2", "prd", "mov", "dbp", "census", "cora", "cddb"] {
            assert!(t.contains(label), "missing {label} in:\n{t}");
        }
    }

    #[test]
    fn table3_has_t_and_l_rows() {
        let t = table3(TINY);
        assert!(t.matches(" T |").count() >= 5, "{t}");
        assert!(t.matches(" L |").count() >= 5, "{t}");
    }

    #[test]
    fn fig5_renders_curve() {
        let f = fig5();
        assert!(f.contains("threshold"));
        assert!(f.lines().count() > 20);
    }

    #[test]
    fn table7_runs_dirty_presets() {
        let t = table7(0.05);
        assert!(t.contains("census"));
        assert!(t.contains("Blast"));
    }
}
