//! Hashmap-baseline traversal and measurement helpers for the graph-engine
//! benchmarks (`benches/bench_graph_engine.rs` and the `exp_graph_bench`
//! runner).
//!
//! The baseline reproduces the pre-engine code path exactly: per-node
//! `FastMap<u32, EdgeAccum>` accumulation (via the reference
//! [`GraphSnapshot::accumulate_neighbors`]), a sort of the materialised
//! adjacency, and contiguous one-chunk-per-thread scheduling
//! ([`parallel_ranges`]). Comparing it against
//! [`blast_graph::pruning::common::collect_weighted_edges`] isolates what the
//! dense scratch-array engine and work-stealing scheduling buy.

use blast_datamodel::hash::FastMap;
use blast_datamodel::parallel::parallel_ranges;
use blast_graph::context::EdgeAccum;
use blast_graph::weights::EdgeWeigher;
use blast_graph::GraphSnapshot;
use std::time::{Duration, Instant};

/// The pre-engine edge materialisation: hashmap adjacency + sort per node,
/// contiguous chunk scheduling. Output is identical to
/// [`blast_graph::pruning::common::collect_weighted_edges`].
pub fn baseline_collect_weighted_edges(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
) -> Vec<(u32, u32, f64)> {
    let owners = ctx.edge_owner_range();
    let n = (owners.end - owners.start) as usize;
    let base = owners.start;
    let clean = ctx.is_clean_clean();
    let chunks = parallel_ranges(n, ctx.threads(), |range| {
        let mut scratch: FastMap<u32, EdgeAccum> = FastMap::default();
        let mut adj: Vec<(u32, EdgeAccum)> = Vec::new();
        let mut out = Vec::new();
        for off in range {
            let u = base + off as u32;
            ctx.accumulate_neighbors(u, &mut scratch);
            adj.clear();
            adj.extend(scratch.iter().map(|(&v, &acc)| (v, acc)));
            adj.sort_unstable_by_key(|(v, _)| *v);
            for &(v, acc) in adj.iter() {
                if !clean && v <= u {
                    continue;
                }
                out.push((u, v, weigher.weight(ctx, u, v, &acc)));
            }
        }
        out
    });
    let mut out = Vec::new();
    for c in chunks {
        out.extend(c);
    }
    out
}

/// The pre-engine WEP pruning call: one full hashmap traversal to fold the
/// global mean weight, then a second full hashmap traversal to collect the
/// retained pairs — exactly the `fold_edges` + `collect_edges` structure the
/// fused single-traversal [`blast_graph::pruning::Wep`] replaced.
pub fn baseline_wep_prune(ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> Vec<(u32, u32)> {
    // Pass 1: fold (count, sum) — materialises nothing, like the old
    // `fold_edges`.
    let owners = ctx.edge_owner_range();
    let n = (owners.end - owners.start) as usize;
    let base = owners.start;
    let clean = ctx.is_clean_clean();
    let folds = parallel_ranges(n, ctx.threads(), |range| {
        let mut scratch: FastMap<u32, EdgeAccum> = FastMap::default();
        let mut adj: Vec<(u32, EdgeAccum)> = Vec::new();
        let (mut count, mut sum) = (0u64, 0.0f64);
        for off in range {
            let u = base + off as u32;
            ctx.accumulate_neighbors(u, &mut scratch);
            adj.clear();
            adj.extend(scratch.iter().map(|(&v, &acc)| (v, acc)));
            adj.sort_unstable_by_key(|(v, _)| *v);
            for &(v, acc) in adj.iter() {
                if !clean && v <= u {
                    continue;
                }
                count += 1;
                sum += weigher.weight(ctx, u, v, &acc);
            }
        }
        (count, sum)
    });
    let (count, sum) = folds
        .into_iter()
        .fold((0u64, 0.0f64), |a, b| (a.0 + b.0, a.1 + b.1));
    if count == 0 {
        return Vec::new();
    }
    let theta = sum / count as f64;
    // Pass 2: re-traverse, collecting the retained pairs.
    baseline_collect_weighted_edges(ctx, weigher)
        .into_iter()
        .filter(|&(_, _, w)| w >= theta)
        .map(|(u, v, _)| (u, v))
        .collect()
}

/// Best-of-`runs` wall-clock time of `f`.
pub fn best_time<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Edges per second for `edges` edges processed in `elapsed`.
pub fn edges_per_sec(edges: u64, elapsed: Duration) -> f64 {
    edges as f64 / elapsed.as_secs_f64().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::filtering::BlockFiltering;
    use blast_blocking::token_blocking::TokenBlocking;
    use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
    use blast_graph::pruning::common::collect_weighted_edges;
    use blast_graph::weights::WeightingScheme;

    #[test]
    fn baseline_and_engine_agree() {
        let spec = dirty_preset(DirtyPreset::Census).scaled(0.05);
        let (input, _) = generate_dirty(&spec);
        let blocks = BlockFiltering::new().filter(&TokenBlocking::new().build(&input));
        let ctx = GraphSnapshot::build(&blocks);
        let baseline = baseline_collect_weighted_edges(&ctx, &WeightingScheme::Arcs);
        let engine = collect_weighted_edges(&ctx, &WeightingScheme::Arcs);
        assert_eq!(baseline.len(), engine.len());
        for (b, e) in baseline.iter().zip(&engine) {
            assert_eq!(b.0, e.0);
            assert_eq!(b.1, e.1);
            assert_eq!(b.2.to_bits(), e.2.to_bits(), "edge ({}, {})", b.0, b.1);
        }
    }
}
