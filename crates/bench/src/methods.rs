//! The compared methods, packaged for the experiment tables.

use blast_blocking::collection::BlockCollection;
use blast_core::config::BlastConfig;
use blast_core::pipeline::BlastPipeline;
use blast_core::schema::extraction::{LooseSchemaConfig, LooseSchemaInfo};
use blast_core::weighting::ChiSquaredWeigher;
use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::input::ErInput;
use blast_graph::meta::{MetaBlocker, PruningAlgorithm};
use blast_graph::weights::WeightingScheme;
use blast_graph::GraphSnapshot;
use blast_metrics::quality::{evaluate_pairs, BlockQuality};
use blast_ml::SupervisedMetaBlocking;
use std::time::Instant;

/// One table row: a method's quality, time and output size.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Row label (paper style: "wnp1 T", "Blast", …).
    pub label: String,
    /// PC/PQ/F1 against the ground truth.
    pub quality: BlockQuality,
    /// Overhead time tₒ in seconds.
    pub seconds: f64,
    /// ‖B‖ of the restructured collection (retained comparisons).
    pub comparisons: u64,
}

impl MethodResult {
    /// Formats the row in the Table 4/5 layout.
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>7.2} {:>9.4} {:>7.3} {:>8.2} {:>10}",
            self.label,
            self.quality.pc * 100.0,
            self.quality.pq * 100.0,
            self.quality.f1,
            self.seconds,
            blast_metrics::report::fmt_card(self.comparisons),
        )
    }

    /// The Table 4/5 header matching [`MethodResult::row`].
    pub fn header() -> String {
        format!(
            "{:<14} {:>7} {:>9} {:>7} {:>8} {:>10}",
            "method", "PC(%)", "PQ(%)", "F1", "to(s)", "|B|"
        )
    }
}

/// Prepared inputs for one dataset: the T (Token Blocking) and L (LMI)
/// block collections after purging+filtering, plus the schema info.
pub struct PreparedDataset {
    /// The ER input.
    pub input: ErInput,
    /// Ground truth.
    pub gt: GroundTruth,
    /// Blocks from plain Token Blocking (+cleaning).
    pub blocks_t: BlockCollection,
    /// Blocks from loosely schema-aware blocking (+cleaning).
    pub blocks_l: BlockCollection,
    /// The loose schema info behind `blocks_l`.
    pub schema: LooseSchemaInfo,
    /// Time spent building the L blocks (includes LMI; the L rows' tₒ
    /// baseline).
    pub l_seconds: f64,
}

/// Builds the T and L block collections the §4.1 workflow compares.
pub fn prepare(
    input: ErInput,
    gt: GroundTruth,
    schema_config: LooseSchemaConfig,
) -> PreparedDataset {
    use blast_blocking::filtering::BlockFiltering;
    use blast_blocking::purging::BlockPurging;
    use blast_blocking::token_blocking::TokenBlocking;

    let clean =
        |blocks: BlockCollection| BlockFiltering::new().filter(&BlockPurging::new().purge(&blocks));

    let blocks_t = clean(TokenBlocking::new().build(&input));

    let t0 = Instant::now();
    let pipeline = BlastPipeline::new(BlastConfig {
        schema: schema_config,
        ..BlastConfig::default()
    });
    let (blocks_l, schema) = pipeline.build_blocks(&input);
    let l_seconds = t0.elapsed().as_secs_f64();

    PreparedDataset {
        input,
        gt,
        blocks_t,
        blocks_l,
        schema,
        l_seconds,
    }
}

/// Traditional meta-blocking averaged over the five weighting schemes —
/// the "wnp1/wnp2/cnp1/cnp2 × T/L" rows. One-algorithm convenience over
/// [`run_traditional_sweep`].
pub fn run_traditional_avg(
    label: &str,
    blocks: &BlockCollection,
    algorithm: PruningAlgorithm,
    gt: &GroundTruth,
    extra_seconds: f64,
) -> MethodResult {
    run_traditional_sweep(blocks, &[algorithm], gt, extra_seconds, |_| {
        label.to_string()
    })
    .pop()
    .expect("one algorithm, one row")
}

/// The scheme × pruning sweep with the materialised edge list **reused**:
/// per weighting scheme the quadratic adjacency traversal runs once
/// (`collect_weighted_edges`), and every pruning algorithm's decision stage
/// runs over that in-memory list (`PruningAlgorithm::prune_edges` —
/// identical results to the per-call traversals it replaces). Degrees are
/// computed once for EJS instead of once per algorithm. Returned rows are
/// ordered like `algorithms`; per-row seconds charge each algorithm its
/// decision time plus an even share of the shared traversals.
pub fn run_traditional_sweep(
    blocks: &BlockCollection,
    algorithms: &[PruningAlgorithm],
    gt: &GroundTruth,
    extra_seconds: f64,
    label: impl Fn(PruningAlgorithm) -> String,
) -> Vec<MethodResult> {
    let n_schemes = WeightingScheme::ALL.len() as f64;
    let share = algorithms.len() as f64;

    let t0 = Instant::now();
    let mut ctx = GraphSnapshot::build(blocks);
    // Degrees once for the whole sweep (EJS is among the schemes).
    ctx.ensure_degrees();
    let shared_setup = t0.elapsed().as_secs_f64() / share;

    struct Acc {
        pc: f64,
        pq: f64,
        f1: f64,
        comparisons: u64,
        seconds: f64,
    }
    let mut accs: Vec<Acc> = algorithms
        .iter()
        .map(|_| Acc {
            pc: 0.0,
            pq: 0.0,
            f1: 0.0,
            comparisons: 0,
            seconds: shared_setup,
        })
        .collect();

    for scheme in WeightingScheme::ALL {
        let t0 = Instant::now();
        let edges = blast_graph::pruning::common::collect_weighted_edges(&ctx, &scheme);
        let materialise = t0.elapsed().as_secs_f64() / share;
        for (acc, &algorithm) in accs.iter_mut().zip(algorithms) {
            let t1 = Instant::now();
            let retained = algorithm.prune_edges(&ctx, &edges);
            acc.seconds += t1.elapsed().as_secs_f64() + materialise;
            let q = evaluate_pairs(retained.pairs(), gt);
            acc.pc += q.pc / n_schemes;
            acc.pq += q.pq / n_schemes;
            acc.f1 += q.f1 / n_schemes;
            acc.comparisons += retained.len() as u64;
        }
    }

    accs.iter()
        .zip(algorithms)
        .map(|(acc, &algorithm)| MethodResult {
            label: label(algorithm),
            quality: BlockQuality {
                pc: acc.pc,
                pq: acc.pq,
                f1: acc.f1,
                detected: 0,
                total_duplicates: gt.len() as u64,
                comparisons: acc.comparisons / WeightingScheme::ALL.len() as u64,
            },
            seconds: acc.seconds / n_schemes + extra_seconds,
            comparisons: acc.comparisons / WeightingScheme::ALL.len() as u64,
        })
        .collect()
}

/// Traditional CNP with BLAST's χ²·h weighting — the "Blast Lχ²ₕ" rows.
pub fn run_blast_weighted_cnp(
    label: &str,
    prepared: &PreparedDataset,
    algorithm: PruningAlgorithm,
) -> MethodResult {
    let t0 = Instant::now();
    let entropies = prepared
        .schema
        .partitioning
        .block_entropies(&prepared.blocks_l);
    let ctx = GraphSnapshot::build(&prepared.blocks_l).with_block_entropies(entropies);
    let retained = MetaBlocker::prune_context(&ctx, &ChiSquaredWeigher::new(), algorithm);
    let seconds = t0.elapsed().as_secs_f64() + prepared.l_seconds;
    let quality = evaluate_pairs(retained.pairs(), &prepared.gt);
    MethodResult {
        label: label.to_string(),
        quality,
        seconds,
        comparisons: retained.len() as u64,
    }
}

/// Supervised meta-blocking \[19\] on the T blocks.
pub fn run_supervised(prepared: &PreparedDataset) -> MethodResult {
    let t0 = Instant::now();
    let (retained, _train) = SupervisedMetaBlocking::new().run(&prepared.blocks_t, &prepared.gt);
    let seconds = t0.elapsed().as_secs_f64();
    let quality = evaluate_pairs(retained.pairs(), &prepared.gt);
    MethodResult {
        label: "sup. MB".to_string(),
        quality,
        seconds,
        comparisons: retained.len() as u64,
    }
}

/// The full BLAST pipeline.
pub fn run_blast(
    prepared: &PreparedDataset,
    schema_config: LooseSchemaConfig,
    label: &str,
) -> MethodResult {
    let t0 = Instant::now();
    let outcome = BlastPipeline::new(BlastConfig {
        schema: schema_config,
        ..BlastConfig::default()
    })
    .run(&prepared.input);
    let seconds = t0.elapsed().as_secs_f64();
    let quality = evaluate_pairs(outcome.pairs.pairs(), &prepared.gt);
    MethodResult {
        label: label.to_string(),
        quality,
        seconds,
        comparisons: outcome.pairs.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};

    #[test]
    fn prepare_and_run_all_method_families() {
        let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.03);
        let (input, gt) = generate_clean_clean(&spec);
        let prepared = prepare(input, gt, LooseSchemaConfig::default());

        let r1 = run_traditional_avg(
            "wnp1 T",
            &prepared.blocks_t,
            PruningAlgorithm::Wnp1,
            &prepared.gt,
            0.0,
        );
        assert!(r1.quality.pc > 0.5);
        let r2 = run_blast_weighted_cnp("cnp1 chi2h", &prepared, PruningAlgorithm::Cnp1);
        assert!(r2.quality.pc > 0.5);
        let r3 = run_supervised(&prepared);
        assert!(r3.comparisons > 0);
        let r4 = run_blast(&prepared, LooseSchemaConfig::default(), "Blast");
        assert!(r4.quality.f1 >= r1.quality.f1 * 0.5);
        // Rows render.
        assert!(MethodResult::header().contains("PC"));
        assert!(r4.row().contains("Blast"));
    }

    /// The shared-edge-list sweep must reproduce the per-call path exactly
    /// (quality and retained counts; only the timing amortisation differs).
    #[test]
    fn sweep_matches_individual_runs() {
        let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.03);
        let (input, gt) = generate_clean_clean(&spec);
        let prepared = prepare(input, gt, LooseSchemaConfig::default());
        let algorithms = [
            PruningAlgorithm::Wep,
            PruningAlgorithm::Cep,
            PruningAlgorithm::Wnp1,
            PruningAlgorithm::Wnp2,
            PruningAlgorithm::Cnp1,
            PruningAlgorithm::Cnp2,
        ];
        let swept =
            run_traditional_sweep(&prepared.blocks_t, &algorithms, &prepared.gt, 0.0, |a| {
                a.label().to_string()
            });
        for (row, &algorithm) in swept.iter().zip(&algorithms) {
            let mut pc = 0.0;
            let mut comparisons = 0u64;
            for scheme in WeightingScheme::ALL {
                let retained = MetaBlocker::new(scheme, algorithm).run(&prepared.blocks_t);
                pc += evaluate_pairs(retained.pairs(), &prepared.gt).pc
                    / WeightingScheme::ALL.len() as f64;
                comparisons += retained.len() as u64;
            }
            assert!(
                (row.quality.pc - pc).abs() < 1e-12,
                "{}: PC {} vs {}",
                algorithm.label(),
                row.quality.pc,
                pc
            );
            assert_eq!(
                row.comparisons,
                comparisons / WeightingScheme::ALL.len() as u64,
                "{}",
                algorithm.label()
            );
        }
    }
}
