//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§4) on the synthetic stand-in benchmarks.
//!
//! Each `experiments::table*` / `experiments::fig*` function returns the
//! formatted experiment output; the `exp_*` binaries are thin wrappers and
//! `run_all` executes the whole suite (feeding `EXPERIMENTS.md`).
//!
//! All experiments honour the `BLAST_SCALE` environment variable: entity
//! counts are multiplied by it. The default is 0.25 — the scale the numbers
//! in `EXPERIMENTS.md` were recorded at, finishing the whole suite in a few
//! minutes. `BLAST_SCALE=1.0` runs the full Table 2 sizes,
//! `BLAST_SCALE=0.05` is a quick smoke pass.

pub mod experiments;
pub mod graph_engine;
pub mod methods;

/// The dataset scale factor from `BLAST_SCALE` (default 0.25, the scale
/// used for the results recorded in `EXPERIMENTS.md`).
pub fn scale() -> f64 {
    std::env::var("BLAST_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(0.25)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_parses_env() {
        // Can't mutate the environment safely in parallel tests; just check
        // the default path.
        let s = super::scale();
        assert!(s > 0.0);
    }
}
