//! Criterion: the decision stage in isolation — flip-heavy vs flip-light
//! micro-batches through the incremental pipeline, so a regression in the
//! delta-aware decision structures (ordered weight index, retained index,
//! containment counters) is catchable without the noise of blocking or
//! snapshot maintenance.
//!
//! * **flip-light**: each inserted profile carries mostly fresh vocabulary
//!   — a tiny dirty neighbourhood, a near-still frontier, few flips. This
//!   is the regime where the decision stage must cost O(dirty), not O(|E|).
//! * **flip-heavy**: each inserted profile is built from hub tokens shared
//!   with many residents — a broad dirty neighbourhood and, for the
//!   edge-centric prunings, real threshold/cutoff drift with crosser
//!   enumeration.

use blast_datamodel::entity::SourceId;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use criterion::{criterion_group, criterion_main, Criterion};

const HUBS: [&str; 6] = ["smith", "main", "street", "1985", "retail", "county"];

/// A pipeline pre-seeded with `n` census-ish residents sharing the hub
/// vocabulary, committed once.
fn seeded(pruning: IncrementalPruning, n: usize) -> IncrementalPipeline {
    let mut p =
        IncrementalPipeline::dirty(WeightingScheme::Cbs, pruning, CleaningConfig::default());
    for i in 0..n {
        let text = format!(
            "{} person{} {} no{} {}",
            HUBS[i % HUBS.len()],
            i,
            HUBS[(i / 3) % HUBS.len()],
            i % 97,
            HUBS[(i / 7) % HUBS.len()],
        );
        p.insert(SourceId(0), &format!("seed{i}"), [("text", text.as_str())]);
    }
    p.commit();
    p
}

fn bench_decision(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision");
    g.sample_size(10);
    for (label, pruning) in [
        (
            "wep",
            IncrementalPruning::Traditional(PruningAlgorithm::Wep),
        ),
        (
            "cep",
            IncrementalPruning::Traditional(PruningAlgorithm::Cep),
        ),
        (
            "wnp1",
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        ),
        (
            "cnp1",
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1),
        ),
    ] {
        // Flip-light: unique vocabulary, single-insert micro-batches.
        let mut p = seeded(pruning, 400);
        let mut i = 0usize;
        g.bench_function(format!("{label}/flip_light"), |b| {
            b.iter(|| {
                let text = format!("unique{i}a unique{i}b unique{i}c");
                p.insert(SourceId(0), &format!("l{i}"), [("text", text.as_str())]);
                i += 1;
                p.commit().stats.retention_flips
            })
        });

        // Flip-heavy: hub vocabulary, single-insert micro-batches that
        // touch a large neighbourhood and drag the global frontier.
        let mut p = seeded(pruning, 400);
        let mut i = 0usize;
        g.bench_function(format!("{label}/flip_heavy"), |b| {
            b.iter(|| {
                let text = format!(
                    "{} {} {} extra{}",
                    HUBS[i % HUBS.len()],
                    HUBS[(i + 1) % HUBS.len()],
                    HUBS[(i + 2) % HUBS.len()],
                    i % 11,
                );
                p.insert(SourceId(0), &format!("h{i}"), [("text", text.as_str())]);
                i += 1;
                p.commit().stats.retention_flips
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
