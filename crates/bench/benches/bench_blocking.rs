//! Criterion: Token Blocking, Block Purging and Block Filtering throughput
//! (the substrate behind Table 3).

use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.25);
    let (input, _) = generate_clean_clean(&spec);
    let blocks = TokenBlocking::new().build(&input);

    let mut g = c.benchmark_group("blocking");
    g.sample_size(10);
    g.bench_function("token_blocking/ar1_quarter", |b| {
        b.iter(|| TokenBlocking::new().build(black_box(&input)))
    });
    g.bench_function("purging/ar1_quarter", |b| {
        b.iter(|| BlockPurging::new().purge(black_box(&blocks)))
    });
    g.bench_function("filtering/ar1_quarter", |b| {
        b.iter(|| BlockFiltering::new().filter(black_box(&blocks)))
    });
    g.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
