//! Criterion: recording overhead of the observability core, pinned so the
//! "a couple of relaxed atomic adds" claim stays honest.
//!
//! * **counter/gauge/histogram record** — the hot-path primitives in
//!   isolation (per-op cost is these numbers divided by the batch size).
//! * **commit record** — one full [`blast_obs::CommitMetrics::record`]
//!   call, i.e. everything the incremental pipeline adds per commit.
//! * **snapshot** — aggregating a populated registry (the cold read path;
//!   never on the commit path).
//! * **disabled counter** — the `set_enabled(false)` early-out that
//!   `exp_obs` uses as its uninstrumented baseline.

use blast_obs::{CommitMetrics, CommitPhases, CommitRecord, Registry};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

/// Amortises the measurement-loop overhead over this many record calls.
const BATCH: u64 = 1000;

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");

    let registry = Arc::new(Registry::new());
    let counter = registry.counter("bench.counter");
    let gauge = registry.gauge("bench.gauge");
    let hist = registry.histogram_with_unit("bench.hist_secs", 1e-9);

    g.bench_function(format!("counter_add_x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                counter.add(i & 3);
            }
            counter.value()
        })
    });

    g.bench_function(format!("gauge_set_x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                gauge.set(i as i64);
            }
            gauge.value()
        })
    });

    g.bench_function(format!("histogram_record_x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                hist.record(1 + i * 997);
            }
            hist.count()
        })
    });

    let metrics = CommitMetrics::new();
    let phases = CommitPhases {
        index_secs: 1.1e-4,
        cleaning_secs: 2.3e-4,
        snapshot_secs: 0.4e-4,
        repair_secs: 1.9e-4,
        reweigh_secs: 0.2e-4,
        decision_secs: 0.6e-4,
    };
    g.bench_function("commit_record", |b| {
        b.iter(|| {
            metrics.record(&CommitRecord {
                phases: Some(&phases),
                tier: 1,
                dirty_nodes: 17,
                patched_rows: 9,
                patched_slots: 14,
                edges_reweighed: 120,
                retention_flips: 3,
                pairs_added: 2,
                pairs_retracted: 1,
                cleaner_dirty_keys: 21,
                cleaner_touched_profiles: 8,
                retained: 4096,
                blocks: 900,
                live_edges: 12_000,
                cached_accumulators: 24_000,
                interned_symbols: 7_000,
                ..CommitRecord::default()
            })
        })
    });

    g.bench_function("snapshot", |b| {
        b.iter(|| metrics.snapshot().samples().len())
    });

    g.bench_function(format!("disabled_counter_add_x{BATCH}"), |b| {
        blast_obs::set_enabled(false);
        b.iter(|| {
            for i in 0..BATCH {
                counter.add(i & 3);
            }
            counter.value()
        });
        blast_obs::set_enabled(true);
    });

    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
