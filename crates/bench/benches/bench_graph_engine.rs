//! Criterion: dense scratch-array engine vs the hashmap-baseline traversal
//! on a Zipf-skewed dirty collection (cora-style heavy duplication), plus
//! the node-centric pass and the fused WEP/CEP pruners that run on it.

use blast_bench::graph_engine::{baseline_collect_weighted_edges, baseline_wep_prune};
use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::pruning::common::{collect_weighted_edges, node_pass};
use blast_graph::weights::WeightingScheme;
use blast_graph::GraphSnapshot;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_graph_engine(c: &mut Criterion) {
    // ×4: the default BLAST_SCALE=0.25 lands on the full cora preset.
    let spec = dirty_preset(DirtyPreset::Cora).scaled(blast_bench::scale() * 4.0);
    let (input, _) = generate_dirty(&spec);
    let blocks = {
        let b = TokenBlocking::new().build(&input);
        BlockFiltering::new().filter(&BlockPurging::new().purge(&b))
    };
    let ctx = GraphSnapshot::build(&blocks);

    let mut g = c.benchmark_group("graph_engine");
    g.sample_size(10);
    g.bench_function("edges_hashmap_baseline", |b| {
        b.iter(|| baseline_collect_weighted_edges(&ctx, &WeightingScheme::Arcs).len())
    });
    g.bench_function("edges_dense_scratch", |b| {
        b.iter(|| collect_weighted_edges(&ctx, &WeightingScheme::Arcs).len())
    });
    // Single-threaded comparison isolates the accumulator swap from the
    // work-stealing scheduling gain.
    let ctx1 = GraphSnapshot::build(&blocks).with_threads(1);
    g.bench_function("edges_hashmap_baseline_1thread", |b| {
        b.iter(|| baseline_collect_weighted_edges(&ctx1, &WeightingScheme::Arcs).len())
    });
    g.bench_function("edges_dense_scratch_1thread", |b| {
        b.iter(|| collect_weighted_edges(&ctx1, &WeightingScheme::Arcs).len())
    });
    g.bench_function("node_pass_dense", |b| {
        b.iter(|| node_pass(&ctx, &WeightingScheme::Cbs, |_, adj| adj.len()))
    });
    g.bench_function("wep_hashmap_baseline", |b| {
        b.iter(|| baseline_wep_prune(&ctx, &WeightingScheme::Cbs).len())
    });
    g.bench_function("wep_fused", |b| {
        b.iter(|| {
            PruningAlgorithm::Wep
                .prune(&ctx, &WeightingScheme::Cbs)
                .len()
        })
    });
    g.bench_function("cep_fused", |b| {
        b.iter(|| {
            PruningAlgorithm::Cep
                .prune(&ctx, &WeightingScheme::Cbs)
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_graph_engine);
criterion_main!(benches);
