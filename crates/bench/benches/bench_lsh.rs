//! Criterion: MinHash signatures and banding (the §3.1.2 pre-processing,
//! behind Tables 5–6).

use blast_lsh::banding::BandingIndex;
use blast_lsh::minhash::MinHasher;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_lsh(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsh");
    g.sample_size(20);

    let hasher = MinHasher::new(150, 42);
    let tokens: Vec<u32> = (0..500).map(|i| i * 7 % 10_000).collect();
    g.bench_function("minhash/500_tokens_150_hashes", |b| {
        b.iter(|| hasher.signature(black_box(tokens.iter().copied())))
    });

    // 400 columns of 200 tokens each.
    let signatures: Vec<_> = (0..400u32)
        .map(|i| hasher.signature((i * 37..i * 37 + 200).map(|x| x % 5000)))
        .collect();
    g.bench_function("banding/index_400_columns", |b| {
        b.iter(|| {
            let mut idx = BandingIndex::new(30, 5);
            for (i, s) in signatures.iter().enumerate() {
                idx.insert(i as u32, s);
            }
            idx.candidate_pairs().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lsh);
criterion_main!(benches);
