//! Criterion: the Fx-style hasher vs the default SipHash on the workloads
//! that dominate blocking (token maps, pair keys) — the DESIGN.md hashing
//! ablation.

use blast_datamodel::hash::FastMap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let tokens: Vec<String> = (0..20_000).map(|i| format!("token{i}")).collect();
    let pairs: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i % 977, i % 1013)).collect();

    let mut g = c.benchmark_group("hashing");
    g.sample_size(20);

    g.bench_function("fx/string_keys", |b| {
        b.iter(|| {
            let mut m: FastMap<&str, u32> = FastMap::default();
            for (i, t) in tokens.iter().enumerate() {
                m.insert(black_box(t.as_str()), i as u32);
            }
            m.len()
        })
    });
    g.bench_function("siphash/string_keys", |b| {
        b.iter(|| {
            let mut m: HashMap<&str, u32> = HashMap::new();
            for (i, t) in tokens.iter().enumerate() {
                m.insert(black_box(t.as_str()), i as u32);
            }
            m.len()
        })
    });

    g.bench_function("fx/pair_keys", |b| {
        b.iter(|| {
            let mut m: FastMap<(u32, u32), u32> = FastMap::default();
            for &p in &pairs {
                *m.entry(black_box(p)).or_insert(0) += 1;
            }
            m.len()
        })
    });
    g.bench_function("siphash/pair_keys", |b| {
        b.iter(|| {
            let mut m: HashMap<(u32, u32), u32> = HashMap::new();
            for &p in &pairs {
                *m.entry(black_box(p)).or_insert(0) += 1;
            }
            m.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
