//! Criterion: attribute-match induction — exact all-pairs LMI vs LSH-LMI vs
//! AC (the Tables 5–6 scalability story).

use blast_core::schema::attribute_profile::AttributeProfiles;
use blast_core::schema::candidates::CandidateSource;
use blast_core::schema::extraction::{InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor};
use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast_datamodel::tokenizer::Tokenizer;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_lmi(c: &mut Criterion) {
    // A small dbp slice: hundreds of pooled attributes.
    let spec = clean_clean_preset(CleanCleanPreset::DbpScaled).scaled(0.02);
    let (input, _) = generate_clean_clean(&spec);
    let profiles = AttributeProfiles::build(&input, &Tokenizer::new());

    let mut g = c.benchmark_group("attribute_match_induction");
    g.sample_size(10);
    for (label, algorithm) in [
        ("lmi", InductionAlgorithm::Lmi),
        ("ac", InductionAlgorithm::AttributeClustering),
    ] {
        g.bench_function(format!("{label}/all_pairs"), |b| {
            b.iter(|| {
                LooseSchemaExtractor::new(LooseSchemaConfig {
                    algorithm,
                    ..Default::default()
                })
                .extract_from_profiles(&profiles)
                .clusters
            })
        });
        g.bench_function(format!("{label}/lsh"), |b| {
            b.iter(|| {
                LooseSchemaExtractor::new(LooseSchemaConfig {
                    algorithm,
                    candidates: CandidateSource::lsh_default(),
                    ..Default::default()
                })
                .extract_from_profiles(&profiles)
                .clusters
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lmi);
criterion_main!(benches);
