//! Criterion: the end-to-end BLAST pipeline per dataset flavour (the
//! headline tₒ of Tables 4–5).

use blast_core::config::BlastConfig;
use blast_core::pipeline::BlastPipeline;
use blast_datagen::{
    clean_clean_preset, dirty_preset, generate_clean_clean, generate_dirty, CleanCleanPreset,
    DirtyPreset,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    let (ar1, _) = generate_clean_clean(&clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.25));
    g.bench_function("blast/ar1_quarter", |b| {
        b.iter(|| {
            BlastPipeline::new(BlastConfig::default())
                .run(black_box(&ar1))
                .pairs
                .len()
        })
    });

    let (prd, _) = generate_clean_clean(&clean_clean_preset(CleanCleanPreset::Prd).scaled(0.25));
    g.bench_function("blast/prd_quarter", |b| {
        b.iter(|| {
            BlastPipeline::new(BlastConfig::default())
                .run(black_box(&prd))
                .pairs
                .len()
        })
    });

    let (census, _) = generate_dirty(&dirty_preset(DirtyPreset::Census).scaled(0.25));
    g.bench_function("blast/census_quarter_dirty", |b| {
        b.iter(|| {
            BlastPipeline::new(BlastConfig::default())
                .run(black_box(&census))
                .pairs
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
