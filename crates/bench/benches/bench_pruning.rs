//! Criterion: pruning-algorithm ablation — WEP/CEP/WNP/CNP vs BLAST's
//! local-max pruning, plus the c-constant sweep called out in DESIGN.md.

use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_core::pruning::BlastPruning;
use blast_core::weighting::ChiSquaredWeigher;
use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_graph::GraphSnapshot;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pruning(c: &mut Criterion) {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.25);
    let (input, _) = generate_clean_clean(&spec);
    let blocks = {
        let b = TokenBlocking::new().build(&input);
        BlockFiltering::new().filter(&BlockPurging::new().purge(&b))
    };
    let mut ctx = GraphSnapshot::build(&blocks);
    ctx.ensure_degrees();

    let mut g = c.benchmark_group("pruning");
    g.sample_size(10);
    for algorithm in PruningAlgorithm::ALL {
        g.bench_function(algorithm.label(), |b| {
            b.iter(|| algorithm.prune(&ctx, &WeightingScheme::Cbs).len())
        });
    }
    g.bench_function("blast_c2_d2", |b| {
        b.iter(|| {
            BlastPruning::new()
                .prune(&ctx, &ChiSquaredWeigher::without_entropy())
                .len()
        })
    });
    for c_const in [1.0, 4.0] {
        g.bench_function(format!("blast_c{c_const}"), |b| {
            b.iter(|| {
                BlastPruning::with_constants(c_const, 2.0)
                    .prune(&ctx, &ChiSquaredWeigher::without_entropy())
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
