//! Criterion: edge-weighting ablation — the five traditional schemes vs
//! BLAST's χ² and χ²·h (the design choice behind Fig. 8), measured as a
//! full-graph weighting pass.

use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
use blast_core::weighting::ChiSquaredWeigher;
use blast_datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast_graph::pruning::common::fold_edges;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_graph::GraphSnapshot;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_weighting(c: &mut Criterion) {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.25);
    let (input, _) = generate_clean_clean(&spec);
    let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
    let blocks = {
        let b = TokenBlocking::new().build_with(&input, &info.partitioning);
        BlockFiltering::new().filter(&BlockPurging::new().purge(&b))
    };
    let entropies = info.partitioning.block_entropies(&blocks);
    let mut ctx = GraphSnapshot::build(&blocks).with_block_entropies(entropies);
    ctx.ensure_degrees();

    let mut g = c.benchmark_group("weighting_full_graph_pass");
    g.sample_size(10);
    let sum_weights = |weigher: &dyn EdgeWeigher| {
        fold_edges(
            &ctx,
            weigher,
            || 0.0f64,
            |acc, _, _, w| *acc += w,
            |a, b| a + b,
        )
    };
    for scheme in WeightingScheme::ALL {
        g.bench_function(scheme.name(), |b| b.iter(|| sum_weights(&scheme)));
    }
    g.bench_function("chi2", |b| {
        b.iter(|| sum_weights(&ChiSquaredWeigher::without_entropy()))
    });
    g.bench_function("chi2_entropy", |b| {
        b.iter(|| sum_weights(&ChiSquaredWeigher::new()))
    });
    g.finish();
}

criterion_group!(benches, bench_weighting);
criterion_main!(benches);
